#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>
#include <utility>

#include "analyze/exec.hpp"
#include "analyze/lint.hpp"
#include "sched/parallel_ops.hpp"
#include "trace/trace.hpp"

namespace harmony::serve {

namespace {

/// Builds the full Mapping a request describes: the AffineMap on the
/// single computed tensor plus the declared input homes (DRAM default).
fm::Mapping materialize_mapping(const Request& req,
                                const fm::AffineMap& map) {
  const auto computed = req.spec->computed_tensors();
  HARMONY_REQUIRE(computed.size() == 1,
                  "serve: spec must have exactly one computed tensor");
  fm::Mapping m;
  m.set_computed(computed[0], map.place_fn(), map.time_fn());
  const auto inputs = req.spec->input_tensors();
  for (std::size_t idx = 0; idx < inputs.size(); ++idx) {
    const InputPlacement placement =
        idx < req.inputs.size() ? req.inputs[idx] : InputPlacement::dram();
    m.set_input(inputs[idx], placement.to_home());
  }
  return m;
}

/// Input-home prototype for the autotuner (computed assignment unused).
fm::Mapping input_proto(const Request& req) {
  fm::Mapping m;
  const auto inputs = req.spec->input_tensors();
  for (std::size_t idx = 0; idx < inputs.size(); ++idx) {
    const InputPlacement placement =
        idx < req.inputs.size() ? req.inputs[idx] : InputPlacement::dram();
    m.set_input(inputs[idx], placement.to_home());
  }
  return m;
}

}  // namespace

Service::Service(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(std::max<std::size_t>(1, cfg.cache_capacity),
             std::max<std::size_t>(1, cfg.cache_shards)),
      queue_(std::max<std::size_t>(1, cfg.queue_capacity)),
      scheduler_(std::max(1u, cfg.num_workers)) {
  cfg_.num_workers = std::max(1u, cfg_.num_workers);
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Service::~Service() { shutdown(); }

void Service::shutdown() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();  // idempotent; wakes the dispatcher to drain
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Response> Service::submit(Request req) {
  metrics_.on_submit();
  const std::uint64_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
  // Covers admission on the caller's thread: validation, the cache fast
  // path (arg0 = 1 on a hit), and the queue push.
  trace::Span admit_span("serve", "admit", rid);
  const Clock::time_point now = Clock::now();
  std::promise<Response> ready;
  std::future<Response> fut = ready.get_future();

  const bool missing_payload =
      req.kind == RequestKind::kPipelineTune
          ? req.pipeline == nullptr || req.pipeline->empty()
          : req.spec == nullptr;
  if (missing_payload) {
    Response r;
    r.status = Status::kError;
    r.kind = req.kind;
    r.error = req.kind == RequestKind::kPipelineTune
                  ? "submit: null or empty pipeline"
                  : "submit: null spec";
    metrics_.on_complete(Clock::now() - now, false, true);
    ready.set_value(std::move(r));
    return fut;
  }

  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->enqueued = now;
  p->use_cache = cacheable(p->req);
  if (p->use_cache) {
    p->key = make_cache_key(p->req, cfg_.key_sample_points);
    // Fast path: answer memoized queries on the caller's thread, never
    // touching the admission queue.
    if (auto hit = cache_.get(p->key)) {
      admit_span.set_args(1, 0);
      Response r = *hit;
      r.cache_hit = true;
      r.latency = Clock::now() - now;
      metrics_.on_complete(r.latency, false, false);
      ready.set_value(std::move(r));
      return fut;
    }
  }

  if (stopping_.load(std::memory_order_acquire)) {
    Response r;
    r.status = Status::kRejected;
    r.kind = p->req.kind;
    r.error = "service shutting down";
    r.retry_after = cfg_.retry_after;
    metrics_.on_reject();
    ready.set_value(std::move(r));
    return fut;
  }

  const std::chrono::nanoseconds budget =
      p->req.deadline.count() > 0 ? p->req.deadline : cfg_.default_deadline;
  if (budget.count() > 0) {
    p->has_deadline = true;
    p->deadline = now + budget;
  }

  // Hand the caller the *real* promise's future before enqueueing.
  fut = p->promise.get_future();
  p->rid = rid;
  if (trace::enabled()) p->enqueue_ns = trace::now_ns();
  const RequestKind kind = p->req.kind;
  if (!queue_.try_push(std::move(p))) {
    Response r;
    r.status = Status::kRejected;
    r.kind = kind;
    r.error = "admission queue full";
    r.retry_after = cfg_.retry_after;
    metrics_.on_reject();
    std::promise<Response> rejected;
    fut = rejected.get_future();
    rejected.set_value(std::move(r));
  }
  return fut;
}

Response Service::call(Request req) { return submit(std::move(req)).get(); }

MetricsSnapshot Service::metrics() const {
  return metrics_.snapshot(queue_.size(), cache_.stats());
}

void Service::dispatch_loop() {
  trace::set_thread_name("serve-dispatch");
  std::vector<std::unique_ptr<Pending>> batch;
  while (true) {
    batch.clear();
    if (!queue_.pop_batch(batch, cfg_.max_batch, cfg_.batch_linger)) {
      return;  // closed and drained
    }
    metrics_.on_batch(batch.size());
    if (trace::enabled()) {
      // Close each request's queue-wait interval (opened at admission)
      // and sample the depth left behind after this drain.
      const std::uint64_t drained_ns = trace::now_ns();
      for (const auto& p : batch) {
        if (p->enqueue_ns != 0) {
          trace::emit_span("serve", "queue_wait", p->enqueue_ns, drained_ns,
                           p->rid);
        }
      }
      trace::emit_counter("serve", "queue_depth", queue_.size());
    }

    // Group duplicates: requests with equal cache keys execute once and
    // share the answer.  Deadline-carrying tunes stay singleton groups —
    // two waiters with different budgets deserve different frontiers.
    std::vector<std::vector<std::unique_ptr<Pending>>> groups;
    std::unordered_map<CacheKey, std::size_t, CacheKeyHash> by_key;
    for (auto& p : batch) {
      const bool is_tune = p->req.kind == RequestKind::kTune ||
                           p->req.kind == RequestKind::kPipelineTune;
      const bool dedupable = p->use_cache && !(is_tune && p->has_deadline);
      if (dedupable) {
        if (const auto it = by_key.find(p->key); it != by_key.end()) {
          groups[it->second].push_back(std::move(p));
          continue;
        }
        by_key.emplace(p->key, groups.size());
      }
      groups.emplace_back();
      groups.back().push_back(std::move(p));
    }

    trace::Span batch_span("serve", "batch", 0, batch.size(), groups.size());
    scheduler_.run([&] {
      sched::RealCtx ctx;
      sched::parallel_for(ctx, 0, groups.size(), 1,
                          [&](std::size_t g) { run_group(groups[g]); });
    });
  }
}

void Service::run_group(std::vector<std::unique_ptr<Pending>>& group) {
  Pending& leader = *group.front();

  // A sibling batch may have filled the cache since admission.
  std::shared_ptr<const Response> cached;
  if (leader.use_cache) {
    trace::Span probe_span("serve", "cache_probe", leader.rid);
    cached = cache_.get(leader.key);
    probe_span.set_args(cached != nullptr, 0);
  }

  Response computed;
  if (cached == nullptr) {
    computed = execute(leader);
    // Count diagnostics once per oracle run (cache hits replay, they
    // don't re-diagnose).
    metrics_.on_diagnostics(computed.legality.diagnostics);
    metrics_.on_diagnostics(computed.lint);
    metrics_.on_diagnostics(computed.exec);
    // Cut-short tunes (of either flavour) stay out of the cache: a short
    // deadline must never poison the answer for a patient caller.
    bool converged = true;
    if (leader.req.kind == RequestKind::kTune) {
      converged = leader.req.strategy == fm::StrategyKind::kExhaustive
                      ? computed.search.exhausted
                      : computed.strategy.completed;
    } else if (leader.req.kind == RequestKind::kPipelineTune) {
      converged = computed.pipeline.completed;
    }
    const bool store = leader.use_cache && computed.ok() && converged;
    if (store) {
      cache_.put(leader.key, std::make_shared<Response>(computed));
    }
  }

  for (std::size_t i = 0; i < group.size(); ++i) {
    Response r = cached ? *cached : computed;
    // Followers coalesced onto the leader count as hits: they were
    // answered by sharing, not by running the oracle.
    r.cache_hit = cached != nullptr || i > 0;
    respond(*group[i], std::move(r));
  }
}

Response Service::execute(const Pending& p) {
  const Request& req = p.req;
  // Named after the oracle ("cost_eval" / "legality" / "tune"): the
  // timeline shows what kind of work each request cost.
  trace::Span exec_span("serve", to_string(req.kind), p.rid);
  Response r;
  r.kind = req.kind;
  try {
    switch (req.kind) {
      case RequestKind::kCostEval: {
        const fm::Mapping m = materialize_mapping(req, req.map);
        r.cost = fm::evaluate_cost(*req.spec, m, req.machine);
        break;
      }
      case RequestKind::kLegality: {
        const fm::Mapping m = materialize_mapping(req, req.map);
        r.legality = fm::verify(*req.spec, m, req.machine, req.verify);
        break;
      }
      case RequestKind::kTune: {
        if (req.strategy != fm::StrategyKind::kExhaustive) {
          execute_strategy_tune(p, r);
          break;
        }
        fm::SearchOptions opts = req.search;
        opts.fom = req.fom;
        // Reuse (or build) the flat evaluation tables for this
        // (spec, machine, inputs) triple — the search then skips its
        // own per-call compile.  Kept in a local too: the winner's
        // execution witness is built from the same tables below.
        const std::shared_ptr<const fm::CompiledSpec> compiled =
            compiled_for(req);
        opts.compiled = compiled;
        // Fork enumeration grains into the service's shared pool.  We
        // are already inside the dispatcher's batch session, so the
        // search forks inline rather than opening a nested run(); the
        // per-request lane ask is clamped by the service-level cap.
        opts.scheduler = &scheduler_;
        const unsigned cap = cfg_.max_tune_workers == 0
                                 ? cfg_.num_workers
                                 : cfg_.max_tune_workers;
        opts.num_workers =
            req.tune_workers == 0 ? cap : std::min(req.tune_workers, cap);
        if (p.has_deadline) {
          // The parallel backend polls cancel once per grain, so a
          // deadline tune runs single-slot grains: the overshoot past
          // the cutoff is bounded by the candidates already in flight
          // (at most one per lane) instead of a whole auto-sized grain.
          if (opts.grain == fm::kAutoGrain) opts.grain = 1;
          // Stop early enough that delivering the response beats the
          // deadline; chain any caller-supplied cancel hook.
          const Clock::time_point cutoff = p.deadline - cfg_.deadline_margin;
          opts.cancel = [cutoff, user = req.search.cancel] {
            return Clock::now() >= cutoff || (user && user());
          };
        }
        // Steal-count delta around the search: approximate when tunes
        // overlap in one batch (steals interleave), but cheap and a
        // faithful saturation signal in aggregate.
        const std::uint64_t steals_before = scheduler_.steal_count();
        r.search =
            fm::search_affine(*req.spec, req.machine, input_proto(req), opts);
        metrics_.on_tune(r.search.workers_used,
                         scheduler_.steal_count() - steals_before);
        r.deadline_cut = p.has_deadline && !r.search.exhausted;
        if (r.search.found) {
          r.cost = r.search.best.cost;
          // Lint the winner: a mapping can win the merit race and still
          // carry smells (idle PEs, hot links) the caller should see.
          const fm::Mapping best = materialize_mapping(req, r.search.best.map);
          r.lint = analyze::lint_mapping(*req.spec, best, req.machine)
                       .diagnostics;
          check_winner_exec(
              r, analyze::build_exec_witness(*compiled, r.search.best.map));
        }
        break;
      }
      case RequestKind::kPipelineTune: {
        execute_pipeline_tune(p, r);
        break;
      }
    }
  } catch (const std::exception& e) {
    r = Response{};
    r.kind = req.kind;
    r.status = Status::kError;
    r.error = e.what();
  }
  return r;
}

void Service::execute_strategy_tune(const Pending& p, Response& r) {
  const Request& req = p.req;
  fm::StrategyOptions opts = req.strategy_opts;
  opts.fom = req.fom;
  // Same service-owned execution plumbing as the exhaustive path: the
  // shared compile cache, the shared scheduler with the tune lane cap,
  // and a deadline cancel chained over any caller-supplied hook.  The
  // anneal/beam drivers poll cancel per epoch and hand back the best
  // table found so far, so a deadline cut still answers with a legal
  // mapping (Response::deadline_cut).
  const std::shared_ptr<const fm::CompiledSpec> compiled = compiled_for(req);
  opts.compiled = compiled;
  opts.scheduler = &scheduler_;
  const unsigned cap =
      cfg_.max_tune_workers == 0 ? cfg_.num_workers : cfg_.max_tune_workers;
  opts.num_workers =
      req.tune_workers == 0 ? cap : std::min(req.tune_workers, cap);
  if (p.has_deadline) {
    const Clock::time_point cutoff = p.deadline - cfg_.deadline_margin;
    opts.cancel = [cutoff, user = req.strategy_opts.cancel] {
      return Clock::now() >= cutoff || (user && user());
    };
  }
  const std::uint64_t steals_before = scheduler_.steal_count();
  r.strategy = fm::search_table(*req.spec, req.machine, input_proto(req),
                                req.strategy, opts);
  metrics_.on_tune(r.strategy.workers_used,
                   scheduler_.steal_count() - steals_before);
  r.deadline_cut = p.has_deadline && !r.strategy.completed;
  if (r.strategy.found) {
    r.cost = r.strategy.cost;
    const fm::Mapping best = fm::to_mapping(*req.spec, r.strategy.best);
    r.lint =
        analyze::lint_mapping(*req.spec, best, req.machine).diagnostics;
    check_winner_exec(r,
                      analyze::build_exec_witness(*compiled, r.strategy.best));
  }
}

void Service::execute_pipeline_tune(const Pending& p, Response& r) {
  const Request& req = p.req;
  const fm::Pipeline& pipe = *req.pipeline;
  fm::PipelineOptions opts;
  opts.fom = req.fom;
  opts.strategy = req.strategy;
  opts.search = req.search;
  opts.strategy_opts = req.strategy_opts;
  opts.pair_candidates = req.pipeline_pair_candidates;
  // Same execution plumbing as single-spec tunes: the shared scheduler
  // with the tune lane cap, per-stage compiles through the coalescing
  // compile cache, and a deadline cancel chained over any caller hook —
  // the pipeline tuner polls it between stages, between probes, and
  // inside every stage search, so a cut answers best-so-far.
  opts.scheduler = &scheduler_;
  const unsigned cap =
      cfg_.max_tune_workers == 0 ? cfg_.num_workers : cfg_.max_tune_workers;
  opts.num_workers =
      req.tune_workers == 0 ? cap : std::min(req.tune_workers, cap);
  if (p.has_deadline) {
    if (req.strategy == fm::StrategyKind::kExhaustive &&
        opts.search.grain == fm::kAutoGrain) {
      opts.search.grain = 1;  // bound overshoot, as in the kTune path
    }
    const Clock::time_point cutoff = p.deadline - cfg_.deadline_margin;
    const std::function<bool()> user =
        req.strategy == fm::StrategyKind::kExhaustive
            ? req.search.cancel
            : req.strategy_opts.cancel;
    opts.cancel = [cutoff, user] {
      return Clock::now() >= cutoff || (user && user());
    };
  }
  opts.compile = [this, &req](std::size_t stage, const fm::Mapping& proto,
                              std::uint64_t home_fp) {
    return compiled_for_stage(req, stage, proto, home_fp);
  };

  const std::uint64_t steals_before = scheduler_.steal_count();
  r.pipeline = req.pipeline_paired
                   ? fm::tune_pipeline_paired(pipe, req.machine, opts)
                   : fm::tune_pipeline_greedy(pipe, req.machine, opts);
  unsigned workers_used = 1;
  for (const fm::StageResult& st : r.pipeline.stages) {
    workers_used = std::max(
        {workers_used, st.search.workers_used, st.strategy.workers_used});
  }
  metrics_.on_tune(workers_used, scheduler_.steal_count() - steals_before);
  r.deadline_cut = p.has_deadline && !r.pipeline.completed;
  if (!r.pipeline.found) return;
  r.cost = r.pipeline.total;
  // Certify every committed stage winner with its *resolved* input
  // homes — the producer-substituted prototype each stage actually
  // compiled against — through the linter and the independent axiom
  // checker.  A clean chain means every handoff the cost model priced
  // is one the relational model agrees is legal.
  for (std::size_t s = 0; s < pipe.size(); ++s) {
    const fm::StageResult& st = r.pipeline.stages[s];
    const fm::FunctionSpec& spec = *pipe.stage(s).spec;
    const fm::Mapping proto =
        fm::stage_input_proto(pipe, s, req.strategy, r.pipeline);
    const std::shared_ptr<const fm::CompiledSpec> compiled =
        compiled_for_stage(req, s, proto, st.home_fingerprint);
    if (req.strategy == fm::StrategyKind::kExhaustive) {
      fm::Mapping full = proto;
      const fm::TensorId target = spec.computed_tensors().front();
      full.set_computed(target, st.affine.place_fn(), st.affine.time_fn());
      const auto lint = analyze::lint_mapping(spec, full, req.machine);
      r.lint.insert(r.lint.end(), lint.diagnostics.begin(),
                    lint.diagnostics.end());
      check_winner_exec(r, analyze::build_exec_witness(*compiled, st.affine));
    } else {
      const fm::Mapping full = fm::to_mapping(spec, st.table);
      const auto lint = analyze::lint_mapping(spec, full, req.machine);
      r.lint.insert(r.lint.end(), lint.diagnostics.begin(),
                    lint.diagnostics.end());
      check_winner_exec(r, analyze::build_exec_witness(*compiled, st.table));
    }
  }
}

void Service::check_winner_exec(Response& r,
                                const analyze::ExecWitness& witness) {
  if (!cfg_.check_exec) return;
  // The independent relational model's verdict on the tune winner: a
  // nonzero EXEC count here means the searcher's legality gate and the
  // axiom checker disagree about this very mapping.
  trace::Span span("serve", "exec_check", 0, 0,
                   static_cast<std::uint64_t>(witness.num_ops));
  const analyze::ExecReport rep = analyze::ExecChecker().check(witness);
  r.exec_checked = true;
  r.exec.insert(r.exec.end(), rep.diagnostics.begin(), rep.diagnostics.end());
  metrics_.on_exec_check(!rep.ok());
}

void Service::warm(const Request& req, Response resp) {
  if (!cacheable(req)) return;
  const CacheKey key = make_cache_key(req, cfg_.key_sample_points);
  resp.cache_hit = false;
  resp.latency = std::chrono::nanoseconds{0};
  cache_.put(key, std::make_shared<Response>(std::move(resp)));
}

void Service::precompile(const Request& req) {
  if (req.kind != RequestKind::kTune || req.spec == nullptr) return;
  if (req.strategy != fm::StrategyKind::kExhaustive) return;
  (void)compiled_for(req);
}

std::shared_ptr<const fm::CompiledSpec> Service::compiled_for(
    const Request& req) {
  if (cfg_.compile_cache_capacity == 0) {
    metrics_.on_compile(false);
    return fm::compile_spec(*req.spec, req.machine, input_proto(req));
  }
  const CacheKey key = make_compile_key(req, cfg_.key_sample_points);
  return compiled_cached(key, [&] {
    return fm::compile_spec(*req.spec, req.machine, input_proto(req));
  });
}

std::shared_ptr<const fm::CompiledSpec> Service::compiled_for_stage(
    const Request& req, std::size_t stage, const fm::Mapping& proto,
    std::uint64_t home_fp) {
  const fm::FunctionSpec& spec = *req.pipeline->stage(stage).spec;
  bool hashable = cfg_.compile_cache_capacity > 0;
  for (const fm::StageInput& b : req.pipeline->stage(stage).inputs) {
    if (b.kind == fm::StageInput::Kind::kExternal &&
        b.home.kind == fm::InputHome::Kind::kDistributed) {
      hashable = false;  // opaque closure: never share across requests
    }
  }
  if (!hashable) {
    metrics_.on_compile(false);
    return fm::compile_spec(spec, req.machine, proto);
  }
  const CacheKey key =
      make_stage_compile_key(req, stage, home_fp, cfg_.key_sample_points);
  return compiled_cached(
      key, [&] { return fm::compile_spec(spec, req.machine, proto); });
}

std::shared_ptr<const fm::CompiledSpec> Service::compiled_cached(
    const CacheKey& key,
    const std::function<std::shared_ptr<const fm::CompiledSpec>()>& compile) {
  // Leader vs. follower is decided atomically at the probe: the caller
  // that *inserts* the in-flight entry compiles (out of lock, so one
  // slow compile never stalls the pool); every caller that *finds* it
  // blocks on the rendezvous instead of compiling again.  A stampede of
  // identical keys therefore costs exactly one fm::compile_spec and one
  // recorded miss — followers count as hits, since they reuse another
  // request's flat tables.
  std::shared_ptr<InflightCompile> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(compile_mu_);
    if (const auto it = compile_cache_.find(key);
        it != compile_cache_.end()) {
      compile_lru_.splice(compile_lru_.begin(), compile_lru_,
                          it->second.lru);
      metrics_.on_compile(true);
      return it->second.compiled;
    }
    const auto [it, inserted] =
        compile_inflight_.try_emplace(key, nullptr);
    if (inserted) {
      it->second = std::make_shared<InflightCompile>();
      leader = true;
    }
    flight = it->second;
  }
  if (!leader) {
    std::unique_lock<std::mutex> lk(flight->mu);
    flight->cv.wait(lk, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    metrics_.on_compile(true);
    return flight->compiled;
  }

  metrics_.on_compile(false);
  std::shared_ptr<const fm::CompiledSpec> compiled;
  std::exception_ptr error;
  try {
    compiled = compile();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(compile_mu_);
    if (compiled) {
      compile_lru_.push_front(key);
      compile_cache_.emplace(key,
                             CompiledEntry{compiled, compile_lru_.begin()});
      while (compile_cache_.size() > cfg_.compile_cache_capacity) {
        compile_cache_.erase(compile_lru_.back());
        compile_lru_.pop_back();
      }
    }
    compile_inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lk(flight->mu);
    flight->compiled = compiled;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return compiled;
}

void Service::respond(Pending& p, Response r) {
  trace::Span reply_span("serve", "reply", p.rid);
  r.latency = Clock::now() - p.enqueued;
  metrics_.on_complete(r.latency, r.deadline_cut,
                       r.status == Status::kError);
  p.promise.set_value(std::move(r));
}

}  // namespace harmony::serve
