// harmony::serve — concurrent mapping-tuning service (server core).
//
// Wraps the F&M oracles (cost evaluation, legality checking, mapping
// autotuning) behind an embeddable request/response service:
//
//   submit() ── cache hit ──────────────────────────▶ ready future
//        │
//        └─ miss ─▶ BoundedQueue (backpressure: full ⇒ kRejected +
//                   retry_after) ─▶ dispatcher thread drains a batch,
//                   dedups identical cache keys, and fans the batch out
//                   across a sched::Scheduler worker pool ─▶ promises
//                   fulfilled, exhausted results memoized.
//
// Deadlines: every request may carry one.  A tune that reaches its
// deadline is not failed — the autotuner's cancel hook (fm/search.hpp)
// stops the enumeration and the response carries the best legal mapping
// found so far (deadline_cut = true).  This is Dally's serial↔parallel
// mapping range operationally: the frontier always holds *some* legal
// point (the serial end is found almost immediately), and more budget
// buys a better one.
//
// Shutdown is graceful: new submits are rejected, everything already
// admitted is drained and answered, then workers stop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace harmony::analyze {
struct ExecWitness;  // analyze/exec.hpp
}  // namespace harmony::analyze

namespace harmony::serve {

struct ServiceConfig {
  /// Scheduler worker pool size (the dispatcher doubles as worker 0
  /// while a batch is running).  Tunes fork their enumeration grains
  /// into this same pool, so batch-level and search-level parallelism
  /// share one set of deques.
  unsigned num_workers = 4;
  /// Service-level cap on fork-join lanes a single tune may claim
  /// (Request::tune_workers is clamped to this).  0 means num_workers.
  unsigned max_tune_workers = 0;
  std::size_t queue_capacity = 1024;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
  /// Requests drained per dispatch round; duplicates within a batch
  /// execute once.
  std::size_t max_batch = 32;
  /// How long the dispatcher lingers for stragglers when a drained
  /// batch is not yet full.
  std::chrono::microseconds batch_linger{50};
  /// Applied when Request::deadline is zero; zero here means no
  /// deadline at all.
  std::chrono::nanoseconds default_deadline{0};
  /// Backoff hint attached to kRejected responses.
  std::chrono::nanoseconds retry_after{std::chrono::milliseconds(1)};
  /// A deadline-cut tune stops searching this far *before* the deadline
  /// so the response is delivered strictly before it.
  std::chrono::nanoseconds deadline_margin{std::chrono::microseconds(200)};
  /// Dependence-edge sample size for cache keys (request.hpp).
  std::size_t key_sample_points = 32;
  /// CompiledSpec entries kept for tunes (LRU, keyed by
  /// make_compile_key).  Two tunes that differ only in FoM or search
  /// knobs share one set of flat evaluation tables; 0 disables the
  /// cache and compiles per tune.
  std::size_t compile_cache_capacity = 128;
  /// Post-hoc axiomatic validation of every tune winner through
  /// analyze::ExecChecker (Response::exec / exec_checked).  On by
  /// default: the check costs <5% of the tune it guards
  /// (tests/analyze_exec_test.cpp pins the ratio), and it is the only
  /// legality evidence that shares no code with the searchers' gate.
  bool check_exec = true;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});
  ~Service();  // shutdown()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admits a request.  The future is ready immediately on a cache hit
  /// or rejection; otherwise it completes when a worker answers.  Never
  /// throws on bad requests — oracle preconditions surface as kError
  /// responses.
  [[nodiscard]] std::future<Response> submit(Request req);

  /// submit() + wait.
  [[nodiscard]] Response call(Request req);

  /// Rejects new work, drains everything admitted, joins the
  /// dispatcher.  Idempotent; called by the destructor.
  void shutdown();

  /// Warm-start hook (snapshot restore, DESIGN.md §17): seeds the
  /// result cache with a previously computed response for `req`, as if
  /// the service had answered it.  Delivery metadata (cache_hit,
  /// latency) is sanitized; non-cacheable requests are ignored.
  void warm(const Request& req, Response resp);

  /// Warm-start hook for the compile path: populates the CompiledSpec
  /// cache for a tune request (no-op for other kinds).  A restored
  /// shard pays its compile misses *here*, at restore time, instead of
  /// stampeding fm::compile_spec when traffic returns — replaying the
  /// snapshot's key sequence afterwards adds zero compile misses.
  void precompile(const Request& req);

  [[nodiscard]] MetricsSnapshot metrics() const;
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request req;
    CacheKey key;
    bool use_cache = false;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< meaningful when has_deadline
    bool has_deadline = false;
    /// Request id stitching this request's trace spans together
    /// (admit → queue_wait → cache_probe → execute → reply).
    std::uint64_t rid = 0;
    /// trace::now_ns() at admission when tracing; 0 otherwise.  The
    /// queue-wait span begins here and ends on the dispatcher.
    std::uint64_t enqueue_ns = 0;
    std::promise<Response> promise;
  };

  void dispatch_loop();
  void run_group(std::vector<std::unique_ptr<Pending>>& group);
  [[nodiscard]] Response execute(const Pending& p);
  /// kTune with strategy == kAnneal / kBeam: fm::search_table over the
  /// TableMap space, with the same service-owned scheduler / compile
  /// cache / deadline plumbing as the exhaustive path.
  void execute_strategy_tune(const Pending& p, Response& r);
  /// kPipelineTune: fm::tune_pipeline_greedy / _paired over the request's
  /// stage DAG.  Per-stage compiles route through the compile cache via
  /// the tuner's compile hook; every committed stage winner is then
  /// certified through ExecChecker with its producer-substituted input
  /// homes (the diagnostics aggregate into Response::exec / lint).
  void execute_pipeline_tune(const Pending& p, Response& r);
  /// Post-hoc ExecChecker replay of a tune winner's execution witness
  /// (no-op unless ServiceConfig::check_exec).  Appends to Response::exec
  /// — pipeline tunes certify one winner per stage.
  void check_winner_exec(Response& r, const analyze::ExecWitness& witness);
  void respond(Pending& p, Response r);
  /// CompiledSpec for a tune request, via the LRU compile cache (may
  /// compile — propagates oracle preconditions as exceptions, which
  /// execute() converts to kError).
  [[nodiscard]] std::shared_ptr<const fm::CompiledSpec> compiled_for(
      const Request& req);
  /// CompiledSpec for one pipeline stage under the resolved input-home
  /// prototype `proto` (fingerprinted by `home_fp`).  Stages with
  /// un-fingerprintable homes (a distributed *external* binding —
  /// producer-fixed distributed homes are covered by home_fp) bypass the
  /// cache and compile directly.
  [[nodiscard]] std::shared_ptr<const fm::CompiledSpec> compiled_for_stage(
      const Request& req, std::size_t stage, const fm::Mapping& proto,
      std::uint64_t home_fp);
  /// The compile cache's general entry point: probe by key, else run
  /// `compile` — with in-flight coalescing, so concurrent misses on one
  /// key run a single compile and the duplicates wait on the first
  /// (mirrors the dispatcher's duplicate-coalescing for tunes).  Both
  /// single-spec tunes (compiled_for) and per-stage pipeline compiles
  /// route through here.
  [[nodiscard]] std::shared_ptr<const fm::CompiledSpec> compiled_cached(
      const CacheKey& key,
      const std::function<std::shared_ptr<const fm::CompiledSpec>()>&
          compile);

  /// One compile-cache entry: the compiled tables plus the LRU hook.
  struct CompiledEntry {
    std::shared_ptr<const fm::CompiledSpec> compiled;
    std::list<CacheKey>::iterator lru;
  };

  /// Rendezvous for one in-flight compile: the first miss publishes the
  /// result (or the exception) here; coalesced duplicates block on the
  /// condition variable instead of compiling again.
  struct InflightCompile {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const fm::CompiledSpec> compiled;
    std::exception_ptr error;
  };

  ServiceConfig cfg_;
  ResultCache cache_;
  BoundedQueue<std::unique_ptr<Pending>> queue_;
  sched::Scheduler scheduler_;
  Metrics metrics_;
  std::atomic<std::uint64_t> next_rid_{1};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;  ///< serializes dispatcher join
  std::thread dispatcher_;
  /// LRU cache of CompiledSpecs shared across tunes (front = freshest).
  /// Guarded by its own mutex: probes are cheap, and compiles happen
  /// *outside* the lock so one slow compile never stalls the pool.
  std::mutex compile_mu_;
  std::list<CacheKey> compile_lru_;
  std::unordered_map<CacheKey, CompiledEntry, CacheKeyHash> compile_cache_;
  /// Compiles currently running out-of-lock, keyed like the cache;
  /// guarded by compile_mu_.  An entry exists exactly while its leader
  /// compiles — it is erased (after publication) before the leader
  /// returns, so the map stays empty at rest.
  std::unordered_map<CacheKey, std::shared_ptr<InflightCompile>, CacheKeyHash>
      compile_inflight_;
};

}  // namespace harmony::serve
