#include "serve/snapshot.hpp"

#include <algorithm>

namespace harmony::serve {

std::vector<std::uint8_t> encode(const CacheSnapshot& snap) {
  Writer w;
  w.u32(CacheSnapshot::kVersion);
  w.u32(static_cast<std::uint32_t>(snap.entries.size()));
  for (const SnapshotEntry& e : snap.entries) {
    w.bytes(e.request);
    w.bytes(e.response);
  }
  return w.take();
}

CacheSnapshot decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != CacheSnapshot::kVersion) {
    throw WireError("CacheSnapshot: version " + std::to_string(version) +
                    " (expected " +
                    std::to_string(CacheSnapshot::kVersion) + ")");
  }
  const std::uint32_t count = r.u32();
  CacheSnapshot snap;
  snap.entries.reserve(std::min<std::size_t>(count, 4096));
  for (std::uint32_t i = 0; i < count; ++i) {
    SnapshotEntry e;
    e.request = r.bytes();
    e.response = r.bytes();
    snap.entries.push_back(std::move(e));
  }
  r.expect_end();
  return snap;
}

}  // namespace harmony::serve
