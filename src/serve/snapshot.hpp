// Cache snapshot / warm-start for worker shards (DESIGN.md §17).
//
// A shard restart without its caches is a stampede in waiting: every
// key it owned storms the compile path at once when traffic returns.
// CacheSnapshot captures the shard's *semantic* state — the encoded
// (WireRequest, WireResponse) pairs of every exhausted, cacheable tune
// and every cost/legality answer it computed — and restore() replays
// them into a fresh Worker: results re-enter the result cache via
// Service::warm(), and each distinct tune triple re-enters the compile
// cache via Service::precompile().  The restore-time compiles *are* the
// snapshot's miss set; replaying the original key sequence afterwards
// adds zero compile misses (pinned by tests/serve_dist_test.cpp and the
// warm-restart phase of bench_e25_distributed).
//
// The format is versioned and self-delimiting — pairs of
// length-prefixed byte strings — so a snapshot taken by one build can
// be rejected cleanly (WireError) rather than misparsed by another.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/wire.hpp"

namespace harmony::serve {

struct SnapshotEntry {
  std::vector<std::uint8_t> request;   ///< encoded WireRequest
  std::vector<std::uint8_t> response;  ///< encoded WireResponse
};

struct CacheSnapshot {
  static constexpr std::uint32_t kVersion = 1;
  std::vector<SnapshotEntry> entries;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const CacheSnapshot& snap);
[[nodiscard]] CacheSnapshot decode_snapshot(
    const std::vector<std::uint8_t>& bytes);

}  // namespace harmony::serve
