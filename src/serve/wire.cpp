#include "serve/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace harmony::serve {

// ---------------------------------------------------------------------
// Primitive codec.
// ---------------------------------------------------------------------

void Writer::str(const std::string& s) {
  if (s.size() > kMaxFrameBytes) throw WireError("Writer::str: oversized");
  u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

void Writer::vec_i64(const std::vector<std::int64_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const std::int64_t x : v) i64(x);
}

void Writer::bytes(const std::vector<std::uint8_t>& v) {
  if (v.size() > kMaxFrameBytes) throw WireError("Writer::bytes: oversized");
  u32(static_cast<std::uint32_t>(v.size()));
  append(v.data(), v.size());
}

const std::uint8_t* Reader::take(std::size_t n) {
  if (n > size_ - pos_) {
    throw WireError("Reader: truncated frame (wanted " + std::to_string(n) +
                    " bytes, " + std::to_string(size_ - pos_) + " left)");
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<std::int64_t> Reader::vec_i64() {
  const std::uint32_t n = u32();
  if (static_cast<std::size_t>(n) * 8 > remaining()) {
    throw WireError("Reader::vec_i64: length prefix exceeds frame");
  }
  std::vector<std::int64_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i64();
  return v;
}

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = take(n);
  return std::vector<std::uint8_t>(p, p + n);
}

void Reader::expect_end() const {
  if (pos_ != size_) {
    throw WireError("Reader: " + std::to_string(size_ - pos_) +
                    " trailing bytes (codec version skew?)");
  }
}

// ---------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------

namespace {

void encode_map(Writer& w, const fm::AffineMap& m) {
  w.i64(m.ti), w.i64(m.tj), w.i64(m.tk), w.i64(m.t0);
  w.i64(m.xi), w.i64(m.xj), w.i64(m.xk), w.i64(m.x0);
  w.i64(m.yi), w.i64(m.yj), w.i64(m.yk), w.i64(m.y0);
  w.i64(m.cols), w.i64(m.rows);
}

fm::AffineMap decode_map(Reader& r) {
  fm::AffineMap m;
  m.ti = r.i64(), m.tj = r.i64(), m.tk = r.i64(), m.t0 = r.i64();
  m.xi = r.i64(), m.xj = r.i64(), m.xk = r.i64(), m.x0 = r.i64();
  m.yi = r.i64(), m.yj = r.i64(), m.yk = r.i64(), m.y0 = r.i64();
  m.cols = static_cast<int>(r.i64());
  m.rows = static_cast<int>(r.i64());
  return m;
}

void encode_diag(Writer& w, const WireDiagnostic& d) {
  w.str(d.rule_id);
  w.u8(d.severity);
  w.str(d.op);
  w.i64(d.pe);
  w.i64(d.cycle);
  w.str(d.message);
  w.str(d.hint);
}

WireDiagnostic decode_diag(Reader& r) {
  WireDiagnostic d;
  d.rule_id = r.str();
  d.severity = r.u8();
  d.op = r.str();
  d.pe = r.i64();
  d.cycle = r.i64();
  d.message = r.str();
  d.hint = r.str();
  return d;
}

void encode_diags(Writer& w, const std::vector<WireDiagnostic>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const WireDiagnostic& d : v) encode_diag(w, d);
}

std::vector<WireDiagnostic> decode_diags(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<WireDiagnostic> v;
  v.reserve(std::min<std::size_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(decode_diag(r));
  return v;
}

std::vector<WireDiagnostic> to_wire_diags(
    const std::vector<analyze::Diagnostic>& diags) {
  std::vector<WireDiagnostic> v;
  v.reserve(diags.size());
  for (const analyze::Diagnostic& d : diags) v.push_back(to_wire(d));
  return v;
}

std::vector<analyze::Diagnostic> from_wire_diags(
    const std::vector<WireDiagnostic>& diags) {
  std::vector<analyze::Diagnostic> v;
  v.reserve(diags.size());
  for (const WireDiagnostic& d : diags) v.push_back(from_wire(d));
  return v;
}

}  // namespace

WireDiagnostic to_wire(const analyze::Diagnostic& d) {
  WireDiagnostic w;
  w.rule_id = d.rule_id;
  w.severity = static_cast<std::uint8_t>(d.severity);
  w.op = d.location.op;
  w.pe = d.location.pe;
  w.cycle = d.location.cycle;
  w.message = d.message;
  w.hint = d.hint;
  return w;
}

analyze::Diagnostic from_wire(const WireDiagnostic& d) {
  if (d.severity > 2) throw WireError("WireDiagnostic: bad severity");
  analyze::Diagnostic out;
  out.rule_id = d.rule_id;
  out.severity = static_cast<analyze::Severity>(d.severity);
  out.location.op = d.op;
  out.location.pe = static_cast<std::int32_t>(d.pe);
  out.location.cycle = d.cycle;
  out.message = d.message;
  out.hint = d.hint;
  return out;
}

void encode(Writer& w, const WireRequest& req) {
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.str(req.spec);
  w.i64(req.machine_cols);
  w.i64(req.machine_rows);
  w.f64(req.cycle_ps);
  w.i64(req.pe_capacity_values);
  w.f64(req.link_bits_per_cycle);
  w.f64(req.local_access_pitch_fraction);
  w.u8(static_cast<std::uint8_t>(req.fom));
  w.u32(static_cast<std::uint32_t>(req.inputs.size()));
  for (const InputPlacement& p : req.inputs) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.i64(p.pe.x);
    w.i64(p.pe.y);
  }
  encode_map(w, req.map);
  w.b(req.check_storage);
  w.b(req.check_bandwidth);
  w.u64(req.max_messages);
  w.vec_i64(req.time_coeffs);
  w.vec_i64(req.space_coeffs);
  w.b(req.search_y);
  w.u64(req.quick_sample);
  w.f64(req.makespan_slack);
  w.u64(req.top_k);
  w.i64(req.deadline_ns);
  w.u32(req.tune_workers);
}

WireRequest decode_request(Reader& r) {
  WireRequest req;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(RequestKind::kPipelineTune)) {
    throw WireError("WireRequest: bad kind");
  }
  req.kind = static_cast<RequestKind>(kind);
  req.spec = r.str();
  req.machine_cols = r.i64();
  req.machine_rows = r.i64();
  req.cycle_ps = r.f64();
  req.pe_capacity_values = r.i64();
  req.link_bits_per_cycle = r.f64();
  req.local_access_pitch_fraction = r.f64();
  const std::uint8_t fom = r.u8();
  if (fom > 2) throw WireError("WireRequest: bad figure of merit");
  req.fom = static_cast<fm::FigureOfMerit>(fom);
  const std::uint32_t num_inputs = r.u32();
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    const std::uint8_t pk = r.u8();
    if (pk > 1) throw WireError("WireRequest: bad input placement");
    InputPlacement p;
    p.kind = static_cast<InputPlacement::Kind>(pk);
    p.pe.x = static_cast<int>(r.i64());
    p.pe.y = static_cast<int>(r.i64());
    req.inputs.push_back(p);
  }
  req.map = decode_map(r);
  req.check_storage = r.b();
  req.check_bandwidth = r.b();
  req.max_messages = r.u64();
  req.time_coeffs = r.vec_i64();
  req.space_coeffs = r.vec_i64();
  req.search_y = r.b();
  req.quick_sample = r.u64();
  req.makespan_slack = r.f64();
  req.top_k = r.u64();
  req.deadline_ns = r.i64();
  req.tune_workers = r.u32();
  return req;
}

void encode(Writer& w, const WireResponse& resp) {
  w.u8(resp.status);
  w.u8(resp.kind);
  w.b(resp.cache_hit);
  w.b(resp.deadline_cut);
  w.i64(resp.makespan_cycles);
  w.f64(resp.makespan_ps);
  w.f64(resp.compute_fj);
  w.f64(resp.onchip_fj);
  w.f64(resp.local_fj);
  w.f64(resp.dram_fj);
  w.u64(resp.messages);
  w.u64(resp.bit_hops);
  w.f64(resp.total_ops);
  w.b(resp.legal_ok);
  w.u64(resp.causality);
  w.u64(resp.exclusivity);
  w.u64(resp.storage);
  w.u64(resp.bandwidth);
  w.i64(resp.peak_live_values);
  w.i64(resp.peak_live_pe);
  w.f64(resp.peak_link_bits_per_cycle);
  w.i64(resp.peak_link);
  encode_diags(w, resp.legality_diags);
  w.b(resp.found);
  encode_map(w, resp.best_map);
  w.i64(resp.best_makespan_cycles);
  w.f64(resp.best_merit);
  w.u64(resp.best_slot);
  w.u64(resp.enumerated);
  w.u64(resp.quick_rejected);
  w.u64(resp.verify_rejected);
  w.u64(resp.legal);
  w.b(resp.exhausted);
  w.u64(resp.next_offset);
  w.u32(resp.workers_used);
  encode_diags(w, resp.lint);
  w.b(resp.exec_checked);
  encode_diags(w, resp.exec);
  w.str(resp.error);
  w.i64(resp.latency_ns);
  w.i64(resp.retry_after_ns);
  w.u32(resp.shard);
  w.b(resp.stolen);
  w.b(resp.coalesced);
}

WireResponse decode_response(Reader& r) {
  WireResponse resp;
  resp.status = r.u8();
  resp.kind = r.u8();
  resp.cache_hit = r.b();
  resp.deadline_cut = r.b();
  resp.makespan_cycles = r.i64();
  resp.makespan_ps = r.f64();
  resp.compute_fj = r.f64();
  resp.onchip_fj = r.f64();
  resp.local_fj = r.f64();
  resp.dram_fj = r.f64();
  resp.messages = r.u64();
  resp.bit_hops = r.u64();
  resp.total_ops = r.f64();
  resp.legal_ok = r.b();
  resp.causality = r.u64();
  resp.exclusivity = r.u64();
  resp.storage = r.u64();
  resp.bandwidth = r.u64();
  resp.peak_live_values = r.i64();
  resp.peak_live_pe = r.i64();
  resp.peak_link_bits_per_cycle = r.f64();
  resp.peak_link = r.i64();
  resp.legality_diags = decode_diags(r);
  resp.found = r.b();
  resp.best_map = decode_map(r);
  resp.best_makespan_cycles = r.i64();
  resp.best_merit = r.f64();
  resp.best_slot = r.u64();
  resp.enumerated = r.u64();
  resp.quick_rejected = r.u64();
  resp.verify_rejected = r.u64();
  resp.legal = r.u64();
  resp.exhausted = r.b();
  resp.next_offset = r.u64();
  resp.workers_used = r.u32();
  resp.lint = decode_diags(r);
  resp.exec_checked = r.b();
  resp.exec = decode_diags(r);
  resp.error = r.str();
  resp.latency_ns = r.i64();
  resp.retry_after_ns = r.i64();
  resp.shard = r.u32();
  resp.stolen = r.b();
  resp.coalesced = r.b();
  return resp;
}

WireResponse to_wire(const Response& resp) {
  WireResponse w;
  w.status = static_cast<std::uint8_t>(resp.status);
  w.kind = static_cast<std::uint8_t>(resp.kind);
  w.cache_hit = resp.cache_hit;
  w.deadline_cut = resp.deadline_cut;
  w.makespan_cycles = resp.cost.makespan_cycles;
  w.makespan_ps = resp.cost.makespan.picoseconds();
  w.compute_fj = resp.cost.compute_energy.femtojoules();
  w.onchip_fj = resp.cost.onchip_movement_energy.femtojoules();
  w.local_fj = resp.cost.local_access_energy.femtojoules();
  w.dram_fj = resp.cost.dram_energy.femtojoules();
  w.messages = resp.cost.messages;
  w.bit_hops = resp.cost.bit_hops;
  w.total_ops = resp.cost.total_ops;
  w.legal_ok = resp.legality.ok;
  w.causality = resp.legality.causality_violations;
  w.exclusivity = resp.legality.exclusivity_violations;
  w.storage = resp.legality.storage_violations;
  w.bandwidth = resp.legality.bandwidth_violations;
  w.peak_live_values = resp.legality.peak_live_values;
  w.peak_live_pe = resp.legality.peak_live_pe;
  w.peak_link_bits_per_cycle = resp.legality.peak_link_bits_per_cycle;
  w.peak_link = resp.legality.peak_link;
  w.legality_diags = to_wire_diags(resp.legality.diagnostics);
  w.found = resp.search.found;
  w.best_map = resp.search.best.map;
  w.best_makespan_cycles = resp.search.best.cost.makespan_cycles;
  w.best_merit = resp.search.best.merit;
  w.best_slot = resp.search.best.slot;
  w.enumerated = resp.search.enumerated;
  w.quick_rejected = resp.search.quick_rejected;
  w.verify_rejected = resp.search.verify_rejected;
  w.legal = resp.search.legal;
  w.exhausted = resp.search.exhausted;
  w.next_offset = resp.search.next_offset;
  w.workers_used = resp.search.workers_used;
  w.lint = to_wire_diags(resp.lint);
  w.exec_checked = resp.exec_checked;
  w.exec = to_wire_diags(resp.exec);
  w.error = resp.error;
  w.latency_ns = resp.latency.count();
  w.retry_after_ns = resp.retry_after.count();
  return w;
}

Response from_wire(const WireResponse& w) {
  if (w.status > 2) throw WireError("WireResponse: bad status");
  if (w.kind > static_cast<std::uint8_t>(RequestKind::kPipelineTune)) {
    throw WireError("WireResponse: bad kind");
  }
  Response resp;
  resp.status = static_cast<Status>(w.status);
  resp.kind = static_cast<RequestKind>(w.kind);
  resp.cache_hit = w.cache_hit;
  resp.deadline_cut = w.deadline_cut;
  resp.cost.makespan_cycles = w.makespan_cycles;
  resp.cost.makespan = Time::picoseconds(w.makespan_ps);
  resp.cost.compute_energy = Energy::femtojoules(w.compute_fj);
  resp.cost.onchip_movement_energy = Energy::femtojoules(w.onchip_fj);
  resp.cost.local_access_energy = Energy::femtojoules(w.local_fj);
  resp.cost.dram_energy = Energy::femtojoules(w.dram_fj);
  resp.cost.messages = w.messages;
  resp.cost.bit_hops = w.bit_hops;
  resp.cost.total_ops = w.total_ops;
  resp.legality.ok = w.legal_ok;
  resp.legality.causality_violations = w.causality;
  resp.legality.exclusivity_violations = w.exclusivity;
  resp.legality.storage_violations = w.storage;
  resp.legality.bandwidth_violations = w.bandwidth;
  resp.legality.peak_live_values = w.peak_live_values;
  resp.legality.peak_live_pe = static_cast<std::int32_t>(w.peak_live_pe);
  resp.legality.peak_link_bits_per_cycle = w.peak_link_bits_per_cycle;
  resp.legality.peak_link = w.peak_link;
  resp.legality.diagnostics = from_wire_diags(w.legality_diags);
  resp.search.found = w.found;
  resp.search.best.map = w.best_map;
  // The best candidate's cost is the response cost (Response::cost doc);
  // only top-1 crosses the wire — a client that wants the full top-k
  // frontier runs in-process.
  resp.search.best.cost = resp.cost;
  resp.search.best.cost.makespan_cycles = w.best_makespan_cycles;
  resp.search.best.merit = w.best_merit;
  resp.search.best.slot = w.best_slot;
  resp.search.enumerated = w.enumerated;
  resp.search.quick_rejected = w.quick_rejected;
  resp.search.verify_rejected = w.verify_rejected;
  resp.search.legal = w.legal;
  resp.search.exhausted = w.exhausted;
  resp.search.next_offset = w.next_offset;
  resp.search.workers_used = w.workers_used;
  resp.lint = from_wire_diags(w.lint);
  resp.exec_checked = w.exec_checked;
  resp.exec = from_wire_diags(w.exec);
  resp.error = w.error;
  resp.latency = std::chrono::nanoseconds(w.latency_ns);
  resp.retry_after = std::chrono::nanoseconds(w.retry_after_ns);
  return resp;
}

void encode(Writer& w, const WireMetrics& m) {
  w.u64(m.submitted);
  w.u64(m.completed);
  w.u64(m.rejected);
  w.u64(m.errors);
  w.u64(m.deadline_cut);
  w.u64(m.tunes);
  w.u64(m.cache_hits);
  w.u64(m.cache_misses);
  w.u64(m.cache_entries);
  w.u64(m.compile_hits);
  w.u64(m.compile_misses);
  w.u64(m.exec_checks);
  w.u64(m.exec_failures);
  w.u32(static_cast<std::uint32_t>(m.latency_buckets.size()));
  for (const std::uint64_t c : m.latency_buckets) w.u64(c);
}

WireMetrics decode_metrics(Reader& r) {
  WireMetrics m;
  m.submitted = r.u64();
  m.completed = r.u64();
  m.rejected = r.u64();
  m.errors = r.u64();
  m.deadline_cut = r.u64();
  m.tunes = r.u64();
  m.cache_hits = r.u64();
  m.cache_misses = r.u64();
  m.cache_entries = r.u64();
  m.compile_hits = r.u64();
  m.compile_misses = r.u64();
  m.exec_checks = r.u64();
  m.exec_failures = r.u64();
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 8 > r.remaining()) {
    throw WireError("WireMetrics: bucket count exceeds frame");
  }
  m.latency_buckets.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) m.latency_buckets[i] = r.u64();
  return m;
}

WireMetrics to_wire(const MetricsSnapshot& snap,
                    const std::vector<std::uint64_t>& buckets) {
  WireMetrics m;
  m.submitted = snap.submitted;
  m.completed = snap.completed;
  m.rejected = snap.rejected;
  m.errors = snap.errors;
  m.deadline_cut = snap.deadline_cut;
  m.tunes = snap.tunes;
  m.cache_hits = snap.cache.hits;
  m.cache_misses = snap.cache.misses;
  m.cache_entries = snap.cache.entries;
  m.compile_hits = snap.compile_hits;
  m.compile_misses = snap.compile_misses;
  m.exec_checks = snap.exec_checks;
  m.exec_failures = snap.exec_failures;
  m.latency_buckets = buckets;
  return m;
}

// ---------------------------------------------------------------------
// Keys and identity.
// ---------------------------------------------------------------------

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(const std::vector<std::uint8_t>& bytes,
                         std::uint64_t seed) {
  std::uint64_t h = mix64(seed ^ bytes.size());
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, bytes.data() + i, 8);
    h = mix64(h ^ chunk);
  }
  std::uint64_t tail = 0;
  if (i < bytes.size()) {
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = mix64(h ^ tail);
  }
  return h;
}

}  // namespace

CacheKey routing_key(const WireRequest& req) {
  WireRequest canon = req;
  // QoS, not semantics: a change of patience or lane budget must not
  // migrate the key off its warm shard.
  canon.deadline_ns = 0;
  canon.tune_workers = 0;
  Writer w;
  encode(w, canon);
  const std::vector<std::uint8_t> bytes = w.data();
  // Two independently seeded streams, the same construction as the
  // result-cache fingerprints: a 64-bit collision cannot alias a route
  // *and* a coalesce decision at once.
  return CacheKey{hash_bytes(bytes, 0xd157e1b0a7e45e21ULL),
                  hash_bytes(bytes, 0x5e9f00d5c0a1e5ceULL)};
}

std::vector<std::uint8_t> semantic_bytes(const WireResponse& resp) {
  WireResponse canon = resp;
  canon.cache_hit = false;
  canon.latency_ns = 0;
  canon.workers_used = 0;
  canon.shard = 0;
  canon.stolen = false;
  canon.coalesced = false;
  Writer w;
  encode(w, canon);
  return w.take();
}

// ---------------------------------------------------------------------
// Transport: loopback.
// ---------------------------------------------------------------------

namespace {

/// Shared state of a loopback pair: inbox[e] is endpoint e's receive
/// queue.  A close from either side wakes both (a drained peer must see
/// EOF, exactly like a socket).
struct LoopbackState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> inbox[2];
  bool closed = false;
};

class LoopbackChannel final : public Channel {
 public:
  LoopbackChannel(std::shared_ptr<LoopbackState> state, int endpoint)
      : state_(std::move(state)), endpoint_(endpoint) {}
  ~LoopbackChannel() override { close(); }

  bool send(const Frame& frame) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->closed) return false;
    state_->inbox[1 - endpoint_].push_back(frame);
    state_->cv.notify_all();
    return true;
  }

  bool recv(Frame& frame) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    std::deque<Frame>& inbox = state_->inbox[endpoint_];
    state_->cv.wait(lock, [&] { return !inbox.empty() || state_->closed; });
    // Drain pending frames even after close — a socket delivers what
    // was written before the FIN, and tests rely on that parity.
    if (inbox.empty()) return false;
    frame = std::move(inbox.front());
    inbox.pop_front();
    return true;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
  int endpoint_;
};

}  // namespace

ChannelPair make_loopback_pair() {
  auto state = std::make_shared<LoopbackState>();
  return ChannelPair{std::make_shared<LoopbackChannel>(state, 0),
                     std::make_shared<LoopbackChannel>(state, 1)};
}

// ---------------------------------------------------------------------
// Transport: AF_UNIX socketpair.
// ---------------------------------------------------------------------

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that died must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

class FdChannel final : public Channel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override {
    close();
    ::close(fd_);
  }

  bool send(const Frame& frame) override {
    if (frame.body.size() > kMaxFrameBytes - 9) return false;
    // Header + body under one lock: frames from concurrent senders
    // (the worker's responder pool) never interleave on the stream.
    std::lock_guard<std::mutex> lock(send_mu_);
    Writer hdr;
    hdr.u32(static_cast<std::uint32_t>(9 + frame.body.size()));
    hdr.u8(static_cast<std::uint8_t>(frame.type));
    hdr.u64(frame.id);
    return write_all(fd_, hdr.data().data(), hdr.data().size()) &&
           write_all(fd_, frame.body.data(), frame.body.size());
  }

  bool recv(Frame& frame) override {
    std::lock_guard<std::mutex> lock(recv_mu_);
    std::uint8_t len_buf[4];
    if (!read_all(fd_, len_buf, sizeof len_buf)) return false;
    std::uint32_t len;
    std::memcpy(&len, len_buf, sizeof len);
    if (len < 9 || len > kMaxFrameBytes) return false;
    std::vector<std::uint8_t> payload(len);
    if (!read_all(fd_, payload.data(), payload.size())) return false;
    Reader r(payload);
    frame.type = static_cast<MsgType>(r.u8());
    frame.id = r.u64();
    frame.body.assign(payload.begin() + 9, payload.end());
    return true;
  }

  void close() override {
    bool expected = false;
    if (shut_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  int fd_;
  std::mutex send_mu_;
  std::mutex recv_mu_;
  std::atomic<bool> shut_{false};
};

}  // namespace

ChannelPair make_socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw WireError("socketpair failed: errno " + std::to_string(errno));
  }
  return ChannelPair{std::make_shared<FdChannel>(fds[0]),
                     std::make_shared<FdChannel>(fds[1])};
}

std::shared_ptr<Channel> channel_from_fd(int fd) {
  return std::make_shared<FdChannel>(fd);
}

}  // namespace harmony::serve
