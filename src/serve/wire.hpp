// Wire protocol for the distributed serve tier (DESIGN.md §17).
//
// A router process and its worker shards speak length-prefixed binary
// frames over a local byte stream (an AF_UNIX socketpair, or an
// in-process loopback queue carrying the *same serialized bytes* so
// every test exercises the full codec path without fork).  The codec is
// deliberately process-boundary-honest: nothing that crosses it holds a
// pointer, a closure, or an iteration-order dependence.  That rules out
// shipping serve::Request itself — its FunctionSpec carries a black-box
// dependence std::function — so wire requests name a spec *family* from
// serve::SpecCatalog (the same grammar harmony-lint speaks:
// "editdist:24x24", "stencil:64,8", "conv:96,8", "matmul:12",
// "irregular:24,3,7") plus every scalar the oracles consume.  Both ends
// rebuild identical Request objects, and make_cache_key() on the two
// rebuilds agrees bit for bit (pinned by tests/serve_wire_test.cpp).
//
// Frame layout (little-endian):
//
//   [u32 length][u8 MsgType][u64 correlation id][body ...]
//                ^---------- length covers this ---------^
//
// The correlation id is chosen by the sender of a kSubmit and echoed on
// the kReply; it is also the trace id stitching the router's "route"
// span to the shard's "shard" span in one timeline.
//
// Integers are fixed-width little-endian; doubles cross as IEEE-754 bit
// patterns; strings and vectors are u32-length-prefixed.  Every decode
// is bounds-checked — a truncated or oversized frame throws WireError,
// never reads past the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace harmony::serve {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frames a body may not exceed (1 GiB) — a corrupt length prefix must
/// fail fast instead of driving a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

enum class MsgType : std::uint8_t {
  kSubmit = 1,    ///< router -> shard: WireRequest body
  kReply = 2,     ///< shard -> router: WireResponse body
  kMetricsGet = 3,///< router -> shard: empty body
  kMetrics = 4,   ///< shard -> router: WireMetrics body
  kSnapshotGet = 5,  ///< router -> shard: empty body
  kSnapshot = 6,     ///< shard -> router: CacheSnapshot bytes
  kRestore = 7,      ///< router -> shard: CacheSnapshot bytes
  kRestored = 8,     ///< shard -> router: u64 entries restored
  kShutdown = 9,     ///< router -> shard: empty body; shard exits serve()
};

struct Frame {
  MsgType type = MsgType::kSubmit;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> body;
};

// ---------------------------------------------------------------------
// Primitive codec.
// ---------------------------------------------------------------------

/// Append-only little-endian encoder over a byte vector.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s);
  void vec_i64(const std::vector<std::int64_t>& v);
  void bytes(const std::vector<std::uint8_t>& v);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian decoder; throws WireError past the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& v)
      : Reader(v.data(), v.size()) {}

  [[nodiscard]] std::uint8_t u8() { return *take(1); }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::int64_t> vec_i64();
  [[nodiscard]] std::vector<std::uint8_t> bytes();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless the whole buffer was consumed — trailing garbage in
  /// a frame means a codec version skew, not padding.
  void expect_end() const;

 private:
  const std::uint8_t* take(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------

/// Process-boundary-safe request: a catalog spec name plus every scalar
/// knob the oracles read.  Supports kCostEval / kLegality / kTune with
/// the exhaustive searcher; the stochastic and pipeline tiers stay
/// in-process (their option structs carry service-owned callables).
struct WireRequest {
  RequestKind kind = RequestKind::kCostEval;
  std::string spec;  ///< SpecCatalog name, e.g. "editdist:24x24"
  // Machine (reconstructed via make_machine(cols, rows) + overrides).
  std::int64_t machine_cols = 1;
  std::int64_t machine_rows = 1;
  double cycle_ps = 200.0;
  std::int64_t pe_capacity_values = 1 << 20;
  double link_bits_per_cycle = 256.0;
  double local_access_pitch_fraction = 0.25;
  fm::FigureOfMerit fom = fm::FigureOfMerit::kEnergyDelay;
  std::vector<InputPlacement> inputs;
  fm::AffineMap map;  ///< kCostEval / kLegality
  // Verify options (kLegality, and the tune's legality gate).
  bool check_storage = true;
  bool check_bandwidth = true;
  std::uint64_t max_messages = 8;
  // Exhaustive-search knobs (kTune).  Empty coefficient pools mean "use
  // the SearchSpace defaults" — mirroring fm::SearchSpace's initializers.
  std::vector<std::int64_t> time_coeffs;
  std::vector<std::int64_t> space_coeffs;
  bool search_y = true;
  std::uint64_t quick_sample = 64;
  double makespan_slack = 4.0;
  std::uint64_t top_k = 5;
  // Routing-excluded fields: per-request QoS, not semantics.  Zeroed by
  // routing_key() so a deadline change cannot migrate a key away from
  // its warm shard.
  std::int64_t deadline_ns = 0;
  std::uint32_t tune_workers = 0;
};

void encode(Writer& w, const WireRequest& req);
[[nodiscard]] WireRequest decode_request(Reader& r);

/// Diagnostic flattened for the wire (analyze::Diagnostic holds strings
/// and plain ints only, so this is a faithful round-trip).
struct WireDiagnostic {
  std::string rule_id;
  std::uint8_t severity = 0;
  std::string op;
  std::int64_t pe = -1;
  std::int64_t cycle = 0;
  std::string message;
  std::string hint;
};

[[nodiscard]] WireDiagnostic to_wire(const analyze::Diagnostic& d);
[[nodiscard]] analyze::Diagnostic from_wire(const WireDiagnostic& d);

/// Response payload: the Response fields a wire client can consume
/// (everything except the in-process-only strategy/pipeline tiers),
/// plus the router-stamped delivery metadata.
struct WireResponse {
  std::uint8_t status = 0;
  std::uint8_t kind = 0;
  bool cache_hit = false;
  bool deadline_cut = false;
  // CostReport.
  std::int64_t makespan_cycles = 0;
  double makespan_ps = 0;
  double compute_fj = 0, onchip_fj = 0, local_fj = 0, dram_fj = 0;
  std::uint64_t messages = 0, bit_hops = 0;
  double total_ops = 0;
  // LegalityReport.
  bool legal_ok = true;
  std::uint64_t causality = 0, exclusivity = 0, storage = 0, bandwidth = 0;
  std::int64_t peak_live_values = 0, peak_live_pe = -1;
  double peak_link_bits_per_cycle = 0;
  std::int64_t peak_link = -1;
  std::vector<WireDiagnostic> legality_diags;
  // SearchResult (exhaustive tune).
  bool found = false;
  fm::AffineMap best_map;
  std::int64_t best_makespan_cycles = 0;
  double best_merit = 0;
  std::uint64_t best_slot = 0;
  std::uint64_t enumerated = 0, quick_rejected = 0, verify_rejected = 0,
                legal = 0;
  bool exhausted = true;
  std::uint64_t next_offset = 0;
  std::uint32_t workers_used = 1;
  std::vector<WireDiagnostic> lint;
  bool exec_checked = false;
  std::vector<WireDiagnostic> exec;
  std::string error;
  std::int64_t latency_ns = 0;
  std::int64_t retry_after_ns = 0;
  // Delivery metadata, stamped by the router after the reply arrives.
  std::uint32_t shard = 0;
  bool stolen = false;     ///< answered off the affinity shard
  bool coalesced = false;  ///< attached to another request's flight
};

void encode(Writer& w, const WireResponse& resp);
[[nodiscard]] WireResponse decode_response(Reader& r);

/// Builds the wire reply for a locally computed Response.  The
/// strategy/pipeline tiers do not cross; a shard never produces them.
[[nodiscard]] WireResponse to_wire(const Response& resp);
/// Client-side view of a reply as a serve::Response (search.best is
/// reconstructed with the best candidate's map and cost).
[[nodiscard]] Response from_wire(const WireResponse& resp);

/// Shard metrics crossing the wire: the counter subset of
/// MetricsSnapshot plus the raw latency-bucket counts, so the router
/// can merge per-shard histograms into fleet percentiles
/// (LatencyHistogram::merge) instead of averaging percentiles — which
/// would be wrong for any non-uniform split.
struct WireMetrics {
  std::uint64_t submitted = 0, completed = 0, rejected = 0, errors = 0;
  std::uint64_t deadline_cut = 0, tunes = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_entries = 0;
  std::uint64_t compile_hits = 0, compile_misses = 0;
  std::uint64_t exec_checks = 0, exec_failures = 0;
  std::vector<std::uint64_t> latency_buckets;  ///< kNumBuckets counts
};

void encode(Writer& w, const WireMetrics& m);
[[nodiscard]] WireMetrics decode_metrics(Reader& r);
[[nodiscard]] WireMetrics to_wire(const MetricsSnapshot& snap,
                                  const std::vector<std::uint64_t>& buckets);

// ---------------------------------------------------------------------
// Keys and identity.
// ---------------------------------------------------------------------

/// 128-bit routing key over the request's *semantic* fields: the
/// QoS-only fields (deadline_ns, tune_workers) are zeroed first, so the
/// same query always rides to the same shard regardless of patience.
/// Distinct from make_cache_key (which needs the full spec); routing
/// only needs stability and spread, both of which hashing the canonical
/// encoding provides.
[[nodiscard]] CacheKey routing_key(const WireRequest& req);

/// The response's semantic payload serialized with delivery metadata
/// (latency, cache_hit, shard, stolen, coalesced) zeroed — two replies
/// to one query compare byte-identical iff the oracles agreed, which is
/// the acceptance check for work-stealing correctness.
[[nodiscard]] std::vector<std::uint8_t> semantic_bytes(
    const WireResponse& resp);

// ---------------------------------------------------------------------
// Transport.
// ---------------------------------------------------------------------

/// A bidirectional frame stream.  send() is safe to call from multiple
/// threads (internally serialized); recv() expects a single consumer.
/// Both return false once the peer closed.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool send(const Frame& frame) = 0;
  virtual bool recv(Frame& frame) = 0;
  virtual void close() = 0;
};

struct ChannelPair {
  std::shared_ptr<Channel> left;
  std::shared_ptr<Channel> right;
};

/// In-process transport: two cross-linked bounded queues moving
/// serialized Frame objects.  Same codec, no fd — every test can run
/// the full router/worker stack without fork and under TSan.
[[nodiscard]] ChannelPair make_loopback_pair();

/// AF_UNIX socketpair transport: frames cross a real kernel byte
/// stream, partial reads/writes and EINTR handled.  Either endpoint may
/// be handed to a forked child via channel_from_fd().
[[nodiscard]] ChannelPair make_socket_pair();

/// Wraps an existing stream fd (e.g. the surviving end of a socketpair
/// after fork) in a Channel.  Takes ownership; closes on destruction.
[[nodiscard]] std::shared_ptr<Channel> channel_from_fd(int fd);

}  // namespace harmony::serve
