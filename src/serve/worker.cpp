#include "serve/worker.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "trace/trace.hpp"

namespace harmony::serve {

Worker::Worker(WorkerConfig cfg)
    : cfg_(cfg),
      service_(cfg.service),
      replies_(cfg.service.queue_capacity + 64) {}

Worker::~Worker() { replies_.close(); }

void Worker::serve(std::shared_ptr<Channel> channel) {
  std::vector<std::thread> responders;
  const unsigned n = std::max(1u, cfg_.responders);
  responders.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    responders.emplace_back([this, &channel] { responder_loop(*channel); });
  }

  Frame frame;
  bool running = true;
  while (running && channel->recv(frame)) {
    switch (frame.type) {
      case MsgType::kSubmit: {
        auto reply = std::make_unique<Reply>();
        reply->id = frame.id;
        if (trace::enabled()) reply->begin_ns = trace::now_ns();
        try {
          Reader r(frame.body);
          WireRequest wire = decode_request(r);
          r.expect_end();
          if (wire.kind != RequestKind::kCostEval &&
              wire.kind != RequestKind::kLegality &&
              wire.kind != RequestKind::kTune) {
            throw WireError(std::string(to_string(wire.kind)) +
                            " is not supported over the wire "
                            "(in-process tiers only)");
          }
          // Canonical (QoS-zeroed) encoding: the snapshot-log identity,
          // so re-asks with a different deadline dedup onto one entry.
          WireRequest canon = wire;
          canon.deadline_ns = 0;
          canon.tune_workers = 0;
          Writer cw;
          encode(cw, canon);
          reply->request = cw.take();
          reply->key = routing_key(wire);
          reply->future = service_.submit(to_request(wire, catalog_));
        } catch (const std::exception& e) {
          reply->immediate = true;
          reply->error.status = static_cast<std::uint8_t>(Status::kError);
          reply->error.error = e.what();
        }
        if (!replies_.try_push(std::move(reply))) {
          // Responder backlog full: shed load the same way the Service
          // sheds admission-queue overflow.
          WireResponse rej;
          rej.status = static_cast<std::uint8_t>(Status::kRejected);
          rej.error = "shard responder backlog full";
          rej.retry_after_ns = cfg_.service.retry_after.count();
          Writer w;
          encode(w, rej);
          channel->send(Frame{MsgType::kReply, frame.id, w.take()});
        }
        break;
      }
      case MsgType::kMetricsGet: {
        const MetricsSnapshot snap = service_.metrics();
        Writer w;
        encode(w, to_wire(snap, snap.latency_buckets));
        channel->send(Frame{MsgType::kMetrics, frame.id, w.take()});
        break;
      }
      case MsgType::kSnapshotGet: {
        channel->send(
            Frame{MsgType::kSnapshot, frame.id, encode(snapshot())});
        break;
      }
      case MsgType::kRestore: {
        std::uint64_t restored = 0;
        try {
          restored = restore(decode_snapshot(frame.body));
        } catch (const std::exception&) {
          restored = 0;  // count of 0 signals a rejected snapshot
        }
        Writer w;
        w.u64(restored);
        channel->send(Frame{MsgType::kRestored, frame.id, w.take()});
        break;
      }
      case MsgType::kShutdown:
        running = false;
        break;
      default:
        break;  // unknown control frames are ignored, not fatal
    }
  }

  // Drain: every admitted request still gets its reply before the
  // responders stop — this is the worker half of graceful drain.
  replies_.close();
  for (std::thread& t : responders) t.join();
  channel->close();
}

void Worker::responder_loop(Channel& channel) {
  trace::set_thread_name("serve-shard");
  std::unique_ptr<Reply> reply;
  while (replies_.pop(reply)) {
    WireResponse wire;
    if (reply->immediate) {
      wire = reply->error;
    } else {
      const Response resp = reply->future.get();
      wire = to_wire(resp);
      // Log converged, freshly computed answers: deadline-cut tunes
      // stay out (same rule as the result cache), and hits are already
      // logged from the run that computed them.
      const bool converged =
          resp.kind != RequestKind::kTune || resp.search.exhausted;
      if (resp.ok() && !resp.cache_hit && converged) {
        std::lock_guard<std::mutex> lock(snap_mu_);
        if (const auto it = snap_index_.find(reply->key);
            it != snap_index_.end()) {
          Writer w;
          encode(w, wire);
          snap_entries_[it->second].response = w.take();
        } else if (snap_entries_.size() < cfg_.snapshot_capacity) {
          Writer w;
          encode(w, wire);
          snap_index_.emplace(reply->key, snap_entries_.size());
          snap_entries_.push_back(SnapshotEntry{reply->request, w.take()});
        }
      }
    }
    if (reply->begin_ns != 0 && trace::enabled()) {
      // The shard half of the cross-process lifecycle: same correlation
      // id as the router's "route" span, so a timeline viewer joins
      // them into one request track.
      trace::emit_span("serve_dist", "shard", reply->begin_ns,
                       trace::now_ns(), reply->id);
    }
    Writer w;
    encode(w, wire);
    channel.send(Frame{MsgType::kReply, reply->id, w.take()});
  }
}

CacheSnapshot Worker::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  CacheSnapshot snap;
  snap.entries = snap_entries_;
  return snap;
}

std::uint64_t Worker::restore(const CacheSnapshot& snap) {
  std::uint64_t restored = 0;
  for (const SnapshotEntry& e : snap.entries) {
    Reader rq(e.request);
    const WireRequest wire_req = decode_request(rq);
    rq.expect_end();
    Reader rr(e.response);
    const WireResponse wire_resp = decode_response(rr);
    rr.expect_end();

    const Request req = to_request(wire_req, catalog_);
    service_.warm(req, from_wire(wire_resp));
    // The compile misses paid here are exactly the snapshot's miss set;
    // replaying the snapshot's keys afterwards compiles nothing.
    service_.precompile(req);
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      const CacheKey key = routing_key(wire_req);
      if (snap_index_.find(key) == snap_index_.end() &&
          snap_entries_.size() < cfg_.snapshot_capacity) {
        snap_index_.emplace(key, snap_entries_.size());
        snap_entries_.push_back(e);
      }
    }
    ++restored;
  }
  return restored;
}

}  // namespace harmony::serve
