// Worker shard of the distributed serve tier (DESIGN.md §17).
//
// A Worker is one shard's whole backend: a private Service (its own
// result cache, CompiledSpec cache, scheduler pool — *affinity state*
// that the router's consistent-hash routing keeps hot), a SpecCatalog
// rebuilding named specs off the wire, and a serve() loop speaking the
// frame protocol over one Channel.
//
// serve() never blocks the receive loop on an oracle: each kSubmit is
// decoded, submitted to the Service (which answers cache hits
// instantly and queues the rest), and handed with its future to a
// small responder pool that waits, records the snapshot log, and sends
// the kReply.  Replies therefore return in completion order, not
// arrival order — the correlation id, not position, matches them up.
//
// The snapshot log retains the encoded (request, response) pair of
// every *converged* non-hit answer, deduplicated by routing key.
// snapshot()/restore() round-trip it so a restarted shard starts warm:
// restore replays results into the result cache (Service::warm) and
// recompiles each distinct tune triple once (Service::precompile) —
// the snapshot's miss set, paid at restore time instead of as a
// stampede when traffic returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"

namespace harmony::serve {

struct WorkerConfig {
  ServiceConfig service;
  /// Responder threads waiting on Service futures and sending replies.
  /// 2 keeps a slow tune from head-of-line-blocking a stream of cheap
  /// cost evals without meaningfully adding threads.
  unsigned responders = 2;
  /// Snapshot-log entries retained (FIFO beyond; 0 disables logging).
  std::size_t snapshot_capacity = 4096;
};

class Worker {
 public:
  explicit Worker(WorkerConfig cfg = {});
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Serves frames from `channel` until kShutdown arrives or the peer
  /// closes.  Blocking — run on a dedicated thread (or as a child
  /// process's main loop).  Reentrant serve() calls are not supported.
  void serve(std::shared_ptr<Channel> channel);

  /// The shard's semantic cache state (see file comment).
  [[nodiscard]] CacheSnapshot snapshot() const;

  /// Replays a snapshot into this shard's caches; returns the number of
  /// entries restored.  Also primes the local snapshot log, so a
  /// restored shard re-snapshots what it knows.
  std::uint64_t restore(const CacheSnapshot& snap);

  /// Direct access for in-process tests and benches.
  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] SpecCatalog& catalog() { return catalog_; }

 private:
  struct Reply {
    std::uint64_t id = 0;
    std::uint64_t begin_ns = 0;
    CacheKey key;  ///< routing key (snapshot-log dedup)
    std::vector<std::uint8_t> request;  ///< canonical encoding (QoS zeroed)
    std::future<Response> future;
    /// Pre-built error reply (decode/convert failed before submit).
    bool immediate = false;
    WireResponse error;
  };

  void responder_loop(Channel& channel);
  void record(const std::vector<std::uint8_t>& request_bytes,
              const WireResponse& resp);

  WorkerConfig cfg_;
  SpecCatalog catalog_;
  Service service_;
  BoundedQueue<std::unique_ptr<Reply>> replies_;

  mutable std::mutex snap_mu_;
  std::vector<SnapshotEntry> snap_entries_;
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> snap_index_;
};

}  // namespace harmony::serve
