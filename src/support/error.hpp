// Error handling for the harmony library.
//
// Library invariants are checked with HARMONY_ASSERT (active in all build
// types: simulators must never silently produce garbage), and user-facing
// precondition violations throw harmony::InvalidArgument so callers can
// recover.  Follows C++ Core Guidelines I.5/I.6 (state preconditions) and
// E.x (use exceptions for error handling at API boundaries).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace harmony {

/// Thrown when a caller violates a documented API precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a simulated machine detects an illegal program/mapping
/// (e.g. a causality violation, an EREW write conflict, a deadlock).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "HARMONY_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace harmony

// Internal invariant check.  Always on: the library is a measurement
// instrument, and a wrong number is worse than a slow one.
#define HARMONY_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::harmony::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define HARMONY_ASSERT_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::harmony::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

// Precondition check at a public API boundary: throws InvalidArgument.
#define HARMONY_REQUIRE(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) throw ::harmony::InvalidArgument(msg);                   \
  } while (0)
