// Deterministic pseudo-random number generation for workload synthesis.
//
// Simulator experiments must be reproducible bit-for-bit across runs and
// platforms, so we carry our own generator (SplitMix64 for seeding,
// xoshiro256** for the stream) instead of std::mt19937 whose distributions
// are implementation-defined.  Distribution helpers are written out
// explicitly for the same reason.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace harmony {

/// SplitMix64: used to expand a single seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  /// Seeds the full 256-bit state from one word via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    HARMONY_REQUIRE(bound > 0, "Rng::next_below: bound must be positive");
    // 128-bit multiply-shift; rejection keeps it exactly uniform.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    HARMONY_REQUIRE(lo <= hi, "Rng::next_int: empty range");
    // All arithmetic in uint64_t: `hi - lo` overflows int64_t whenever
    // the range spans more than half the domain, and `lo + offset` does
    // so on the full-range path — both signed-overflow UB.  Unsigned
    // wraparound is defined and, with the int64_t round trip being
    // value-preserving mod 2^64 (C++20 two's complement), lands on
    // exactly the intended value.
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t offset = width == 0 ? next_u64() : next_below(width);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p(n);
    for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace harmony
