#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace harmony {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  HARMONY_REQUIRE(!samples.empty(), "percentile: empty sample");
  HARMONY_REQUIRE(q >= 0.0 && q <= 1.0, "percentile: q must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& samples) {
  HARMONY_REQUIRE(!samples.empty(), "geometric_mean: empty sample");
  double log_sum = 0.0;
  for (double s : samples) {
    HARMONY_REQUIRE(s > 0.0, "geometric_mean: samples must be positive");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  HARMONY_REQUIRE(x.size() == y.size() && x.size() >= 2,
                  "linear_fit: need >=2 equal-length samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // vertical line: report zeros
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace harmony
