// Lightweight descriptive statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace harmony {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-safe pattern:
  /// accumulate per worker, merge at join).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics).  `q` in [0,1].  Copies and sorts; intended for reporting,
/// not hot loops.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Geometric mean; all samples must be positive.
[[nodiscard]] double geometric_mean(const std::vector<double>& samples);

/// Ordinary least squares fit y = a + b*x; returns {a, b, r^2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace harmony
