#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

#include "support/error.hpp"

namespace harmony {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HARMONY_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

Table& Table::title(std::string t) {
  title_ = std::move(t);
  return *this;
}

Table& Table::add_row(std::vector<Cell> row) {
  HARMONY_REQUIRE(row.size() == headers_.size(),
                  "Table::add_row: arity mismatch with headers");
  rows_.push_back(std::move(row));
  return *this;
}

std::string format_double(double v) {
  char buf[64];
  const double mag = std::fabs(v);
  if (v == 0.0) {
    return "0";
  } else if (mag >= 1e7 || mag < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else if (mag >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string format_ratio(double v) { return format_double(v) + "x"; }

std::string Table::format_cell(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  return format_double(std::get<double>(c));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& r : rendered) line(r);
  rule();
  // Machine-readable mirror for downstream tooling (plots, diffing):
  // every bench run with HARMONY_CSV=1 emits each table as CSV too.
  if (std::getenv("HARMONY_CSV") != nullptr) {
    os << "-- csv --\n";
    print_csv(os);
    os << "-- end csv --\n";
  }
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(format_cell(row[c]));
    }
    os << '\n';
  }
}

void Table::print_json(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    return out;
  };
  auto value = [&](const Cell& c) -> std::string {
    if (const auto* s = std::get_if<std::string>(&c)) {
      return '"' + escape(*s) + '"';
    }
    if (const auto* i = std::get_if<std::int64_t>(&c)) {
      return std::to_string(*i);
    }
    const double d = std::get<double>(c);
    if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", d);
    return buf;
  };
  os << '[';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ",\n " : "\n ") << '{';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      os << '"' << escape(headers_[c]) << "\": " << value(rows_[r][c]);
    }
    os << '}';
  }
  os << (rows_.empty() ? "]" : "\n]");
}

}  // namespace harmony
