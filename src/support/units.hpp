// Strong physical-quantity types used throughout the cost models.
//
// Dally's statement (paper §3) prices computation in femtojoules and
// picoseconds; mixing those with cycle counts or bytes is the classic unit
// bug, so each quantity gets its own vocabulary type (Core Guidelines
// I.4: make interfaces precisely and strongly typed).
//
// All types are trivially-copyable value types with the usual affine
// arithmetic: Q+Q, Q-Q, Q*scalar, Q/scalar, Q/Q -> double (dimensionless
// ratio).  Construction is explicit; named factory functions give the unit.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace harmony {

namespace detail {

/// CRTP base providing arithmetic for a scalar quantity stored as double.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double raw) : raw_(raw) {}

  /// Raw magnitude in the type's canonical unit (documented per type).
  [[nodiscard]] constexpr double raw() const { return raw_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.raw_ + b.raw_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.raw_ - b.raw_};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.raw_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.raw_ * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.raw_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.raw_ / b.raw_;
  }
  friend constexpr auto operator<=>(const Quantity&, const Quantity&) = default;

  Derived& operator+=(Derived o) {
    raw_ += o.raw_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived o) {
    raw_ -= o.raw_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator*=(double s) {
    raw_ *= s;
    return static_cast<Derived&>(*this);
  }

 private:
  double raw_ = 0.0;
};

}  // namespace detail

/// Energy, canonical unit: femtojoule (fJ).
class Energy : public detail::Quantity<Energy> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double femtojoules() const { return raw(); }
  [[nodiscard]] constexpr double picojoules() const { return raw() * 1e-3; }
  [[nodiscard]] constexpr double nanojoules() const { return raw() * 1e-6; }
  [[nodiscard]] static constexpr Energy femtojoules(double fj) {
    return Energy{fj};
  }
  [[nodiscard]] static constexpr Energy picojoules(double pj) {
    return Energy{pj * 1e3};
  }
  [[nodiscard]] static constexpr Energy nanojoules(double nj) {
    return Energy{nj * 1e6};
  }
  [[nodiscard]] static constexpr Energy zero() { return Energy{0.0}; }
};

/// Time, canonical unit: picosecond (ps).
class Time : public detail::Quantity<Time> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double picoseconds() const { return raw(); }
  [[nodiscard]] constexpr double nanoseconds() const { return raw() * 1e-3; }
  [[nodiscard]] constexpr double microseconds() const { return raw() * 1e-6; }
  [[nodiscard]] static constexpr Time picoseconds(double ps) {
    return Time{ps};
  }
  [[nodiscard]] static constexpr Time nanoseconds(double ns) {
    return Time{ns * 1e3};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0.0}; }
};

/// On-die length, canonical unit: millimetre (mm).
class Length : public detail::Quantity<Length> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double millimetres() const { return raw(); }
  [[nodiscard]] static constexpr Length millimetres(double mm) {
    return Length{mm};
  }
  [[nodiscard]] static constexpr Length zero() { return Length{0.0}; }
};

/// Die area, canonical unit: mm^2.
class Area : public detail::Quantity<Area> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double mm2() const { return raw(); }
  [[nodiscard]] static constexpr Area mm2(double a) { return Area{a}; }
  /// Side length of a square die of this area.
  [[nodiscard]] Length side() const {
    return Length::millimetres(std::sqrt(mm2()));
  }
  /// Diagonal of a square die of this area (the paper's "across the
  /// diagonal of an 800mm^2 GPU").
  [[nodiscard]] Length diagonal() const {
    return Length::millimetres(std::sqrt(2.0 * mm2()));
  }
};

inline std::ostream& operator<<(std::ostream& os, Energy e) {
  return os << e.femtojoules() << " fJ";
}
inline std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.picoseconds() << " ps";
}
inline std::ostream& operator<<(std::ostream& os, Length l) {
  return os << l.millimetres() << " mm";
}
inline std::ostream& operator<<(std::ostream& os, Area a) {
  return os << a.mm2() << " mm^2";
}

}  // namespace harmony
