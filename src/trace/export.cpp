#include "trace/export.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <string_view>

#include "support/error.hpp"

namespace harmony::trace {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
/// Event names are string literals, but thread names are user-supplied.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

/// Trace-event timestamps are microseconds; emit fractional µs so
/// nanosecond-resolution spans survive the unit change.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

[[nodiscard]] bool is_sleep(const Event& e) {
  return std::strcmp(e.name, "sleep") == 0;
}

[[nodiscard]] bool is_steal(const Event& e) {
  return std::strcmp(e.cat, "sched") == 0 && std::strcmp(e.name, "steal") == 0;
}

}  // namespace

void write_chrome_json(std::ostream& os, const Capture& cap) {
  // Normalize to the earliest timestamp so the viewport opens on data.
  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const Event& e : cap.events) t0 = std::min(t0, e.begin_ns);
  if (cap.events.empty()) t0 = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const CapturedThread& t : cap.threads) {
    if (t.name.empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
       << t.tid << ",\"args\":{\"name\":";
    write_json_string(os, t.name);
    os << "}}";
  }
  for (const Event& e : cap.events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"" << (e.kind == EventKind::kSpan ? 'X' : 'C')
       << "\",\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":";
    write_json_string(os, e.cat);
    os << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    write_us(os, e.begin_ns - t0);
    if (e.kind == EventKind::kSpan) {
      os << ",\"dur\":";
      write_us(os, e.end_ns - e.begin_ns);
      os << ",\"args\":{\"id\":" << e.id << ",\"arg0\":" << e.arg0
         << ",\"arg1\":" << e.arg1 << "}";
    } else {
      os << ",\"args\":{\"value\":" << e.arg0 << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

void write_chrome_json_file(const std::string& path, const Capture& cap) {
  std::ofstream os(path);
  HARMONY_REQUIRE(os.good(), "trace: cannot open output file: " + path);
  write_chrome_json(os, cap);
}

Summary summarize(const Capture& cap) {
  Summary s;
  s.dropped = cap.dropped;
  s.events = cap.events.size();

  // Per-thread reductions.  Threads that recorded nothing still appear
  // (a parked worker whose sleep spans were all dropped is worth seeing).
  for (const CapturedThread& t : cap.threads) {
    WorkerSummary w;
    w.tid = t.tid;
    w.name = t.name;
    s.workers.push_back(std::move(w));
  }
  auto worker = [&s](std::uint32_t tid) -> WorkerSummary& {
    for (WorkerSummary& w : s.workers) {
      if (w.tid == tid) return w;
    }
    s.workers.push_back(WorkerSummary{});
    s.workers.back().tid = tid;
    return s.workers.back();
  };

  std::uint64_t min_begin = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_end = 0;
  // (begin, end) of chainable work spans for the critical-path scan.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> work;
  for (const Event& e : cap.events) {
    if (e.kind != EventKind::kSpan) continue;
    WorkerSummary& w = worker(e.tid);
    w.spans += 1;
    min_begin = std::min(min_begin, e.begin_ns);
    max_end = std::max(max_end, e.end_ns);
    if (is_sleep(e)) {
      w.sleep_ns += e.end_ns - e.begin_ns;
      continue;  // waiting, not work: no busy time, no chain membership
    }
    w.busy_ns += e.end_ns - e.begin_ns;
    if (is_steal(e)) w.steals += 1;
    if (e.end_ns > e.begin_ns) work.emplace_back(e.begin_ns, e.end_ns);
  }
  if (max_end >= min_begin) s.wall_ns = max_end - min_begin;
  for (WorkerSummary& w : s.workers) {
    w.utilization =
        s.wall_ns == 0 ? 0.0
                       : static_cast<double>(w.busy_ns) /
                             static_cast<double>(s.wall_ns);
  }
  std::sort(s.workers.begin(), s.workers.end(),
            [](const WorkerSummary& a, const WorkerSummary& b) {
              return a.tid < b.tid;
            });

  // Critical path: longest chain of work spans where each span begins
  // at-or-after its predecessor ends (the only ordering a timestamp
  // trace can certify).  Zero-duration spans were excluded above — they
  // add nothing to any chain and would complicate the tie handling.
  //
  // DP in begin order: f(i) = dur(i) + max{ f(j) : end(j) <= begin(i) }.
  // Every such j has begin(j) < end(j) <= begin(i), so j precedes i in
  // begin order and f(j) is already computed; a pointer over the
  // end-sorted order maintains the running max in O(n log n) total.
  std::sort(work.begin(), work.end());
  std::vector<std::size_t> by_end(work.size());
  for (std::size_t i = 0; i < by_end.size(); ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(),
            [&work](std::size_t a, std::size_t b) {
              return work[a].second < work[b].second;
            });
  std::vector<std::uint64_t> f(work.size(), 0);
  std::uint64_t best_finished = 0;  // max f(j) over consumed spans
  std::size_t k = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    while (k < by_end.size() && work[by_end[k]].second <= work[i].first) {
      best_finished = std::max(best_finished, f[by_end[k]]);
      ++k;
    }
    f[i] = (work[i].second - work[i].first) + best_finished;
    s.critical_path_ns = std::max(s.critical_path_ns, f[i]);
  }
  return s;
}

Table summary_table(const Summary& s) {
  Table t({"metric", "value"});
  t.title("trace summary");
  t.add_row({"wall_us", static_cast<double>(s.wall_ns) / 1000.0});
  t.add_row(
      {"critical_path_us", static_cast<double>(s.critical_path_ns) / 1000.0});
  t.add_row({"events", static_cast<std::int64_t>(s.events)});
  t.add_row({"dropped", static_cast<std::int64_t>(s.dropped)});
  for (const WorkerSummary& w : s.workers) {
    const std::string who =
        w.name.empty() ? "tid" + std::to_string(w.tid) : w.name;
    t.add_row({who + ".spans", static_cast<std::int64_t>(w.spans)});
    t.add_row({who + ".busy_us", static_cast<double>(w.busy_ns) / 1000.0});
    t.add_row({who + ".util", w.utilization});
    t.add_row({who + ".steals", static_cast<std::int64_t>(w.steals)});
    t.add_row({who + ".sleep_us", static_cast<double>(w.sleep_ns) / 1000.0});
  }
  return t;
}

std::string trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      return std::string(arg.substr(std::strlen("--trace=")));
    }
    if (arg == "--trace" && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

}  // namespace harmony::trace
