// Exporters for harmony::trace captures.
//
// Two consumers, two formats:
//   * write_chrome_json — Chrome trace-event JSON ("traceEvents" array of
//     "X" complete events, "C" counters, and "M" thread_name metadata),
//     loadable in Perfetto / chrome://tracing for interactive timelines.
//   * summarize — an in-process reduction to per-worker utilization,
//     steal counts, and the critical path through the span DAG, rendered
//     as a Table like every other harmony report.  DESIGN.md §11.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "trace/trace.hpp"

namespace harmony::trace {

/// Writes `cap` as Chrome trace-event JSON.  Timestamps are normalized
/// to the earliest event (µs since capture start) so Perfetto's viewport
/// opens on the data rather than on steady-clock epoch.
void write_chrome_json(std::ostream& os, const Capture& cap);

/// write_chrome_json to a file.  Throws InvalidArgument if the file
/// cannot be opened.
void write_chrome_json_file(const std::string& path, const Capture& cap);

/// One traced thread's reduction.
struct WorkerSummary {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t spans = 0;    ///< span events (sleep included)
  std::uint64_t busy_ns = 0;  ///< sum of span durations, sleep excluded
  std::uint64_t sleep_ns = 0; ///< sum of "sleep" span durations
  std::uint64_t steals = 0;   ///< sched/steal spans recorded by this thread
  /// busy_ns / capture wall time.  busy_ns is a plain sum, so nested
  /// spans (a serve exec span inside a sched steal span, grains inside
  /// either) count every enclosing level and utilization can exceed 1 —
  /// it is a span-weighted activity measure, not a duty cycle.
  double utilization = 0.0;
};

struct Summary {
  std::vector<WorkerSummary> workers;  ///< sorted by tid
  std::uint64_t wall_ns = 0;           ///< max end − min begin over spans
  /// Longest chain of spans under time-induced happens-before
  /// (a span can follow another only if it begins at-or-after the other
  /// ends).  Sleep spans are excluded — they are waiting, not work.
  std::uint64_t critical_path_ns = 0;
  std::uint64_t events = 0;   ///< events in the capture
  std::uint64_t dropped = 0;  ///< events lost to ring wrap
};

[[nodiscard]] Summary summarize(const Capture& cap);

/// Renders a Summary in the {"metric","value"} style of metrics_table.
[[nodiscard]] Table summary_table(const Summary& s);

/// Parses `--trace=PATH` or `--trace PATH` out of argv; returns "" when
/// absent.  Shared by serve_demo and the bench binaries.
[[nodiscard]] std::string trace_flag(int argc, char** argv);

}  // namespace harmony::trace
