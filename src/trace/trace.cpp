#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

#include "support/error.hpp"

namespace harmony::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One thread's ring.  The owning thread is the only writer; readers
/// (capture, dropped_total) either hold the registry mutex and read the
/// atomic count (always safe) or additionally read the ring contents
/// (safe only under the documented quiescence contract).
struct ThreadLog {
  std::vector<Event> ring;  ///< capacity fixed for a session; empty = off
  std::atomic<std::uint64_t> count{0};  ///< events ever pushed this session
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mu;
  // unique_ptr so ThreadLog addresses survive vector growth — the
  // owning thread keeps a raw pointer in thread_local storage.  Logs
  // are never removed: a thread may die while its ring still holds
  // events a later capture wants.
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::uint32_t next_tid = 1;
  std::size_t ring_capacity = 0;  ///< 0 = no session has run yet
  bool session_active = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local ThreadLog* tls_log = nullptr;

ThreadLog& my_log() {
  if (tls_log == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    auto log = std::make_unique<ThreadLog>();
    log->tid = reg.next_tid++;
    log->ring.resize(reg.ring_capacity);
    tls_log = log.get();
    reg.logs.push_back(std::move(log));
  }
  return *tls_log;
}

void push(const Event& e) {
  ThreadLog& log = my_log();
  if (log.ring.empty()) return;  // registered before any session sized it
  const std::uint64_t c = log.count.load(std::memory_order_relaxed);
  Event& slot = log.ring[c % log.ring.size()];
  slot = e;
  slot.tid = log.tid;
  // Release so a capture that reads `count` after quiescence also sees
  // the slot contents written above.
  log.count.store(c + 1, std::memory_order_release);
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void emit_span(const char* cat, const char* name, std::uint64_t begin_ns,
               std::uint64_t end_ns, std::uint64_t id, std::uint64_t arg0,
               std::uint64_t arg1) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.id = id;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.kind = EventKind::kSpan;
  push(e);
}

void emit_counter(const char* cat, const char* name, std::uint64_t value) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.begin_ns = now_ns();
  e.end_ns = e.begin_ns;
  e.arg0 = value;
  e.kind = EventKind::kCounter;
  push(e);
}

void set_thread_name(std::string name) {
  ThreadLog& log = my_log();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  log.name = std::move(name);
}

std::uint64_t dropped_total() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& log : reg.logs) {
    const std::uint64_t c = log->count.load(std::memory_order_acquire);
    const std::uint64_t cap = log->ring.size();
    if (cap != 0 && c > cap) dropped += c - cap;
  }
  return dropped;
}

TraceSession::TraceSession(std::size_t events_per_thread) {
  HARMONY_REQUIRE(events_per_thread > 0,
                  "TraceSession: events_per_thread must be positive");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  HARMONY_REQUIRE(!reg.session_active,
                  "TraceSession: another session is already active");
  reg.session_active = true;
  reg.ring_capacity = events_per_thread;
  for (auto& log : reg.logs) {
    log->ring.assign(events_per_thread, Event{});
    log->count.store(0, std::memory_order_relaxed);
  }
  detail::g_enabled.store(true, std::memory_order_seq_cst);
}

TraceSession::~TraceSession() {
  stop();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.session_active = false;
}

void TraceSession::stop() {
  if (stopped_) return;
  stopped_ = true;
  detail::g_enabled.store(false, std::memory_order_seq_cst);
}

Capture TraceSession::capture() const {
  HARMONY_REQUIRE(stopped_ && !enabled(),
                  "TraceSession::capture requires stop() first");
  Capture cap;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (const auto& log : reg.logs) {
    const std::uint64_t count = log->count.load(std::memory_order_acquire);
    const std::uint64_t ring_cap = log->ring.size();
    if (ring_cap == 0) continue;
    const std::uint64_t kept = std::min<std::uint64_t>(count, ring_cap);
    const std::uint64_t dropped = count - kept;
    CapturedThread t;
    t.tid = log->tid;
    t.name = log->name;
    t.events = kept;
    t.dropped = dropped;
    cap.threads.push_back(std::move(t));
    cap.dropped += dropped;
    // Oldest surviving event is at index count - kept (mod capacity).
    for (std::uint64_t i = 0; i < kept; ++i) {
      cap.events.push_back(log->ring[(count - kept + i) % ring_cap]);
    }
  }
  std::sort(cap.events.begin(), cap.events.end(),
            [](const Event& a, const Event& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.tid < b.tid;
            });
  return cap;
}

}  // namespace harmony::trace
