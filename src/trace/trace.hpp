// harmony::trace — always-available, low-overhead span tracing.
//
// The paper's central claim (Dally §3) is that cost lives in the mapping
// of work onto (space, time), not in the ops themselves.  A span trace is
// exactly a measured (space, time) mapping of the runtime's *own*
// execution: which worker (space) ran which task over which interval
// (time), which lane evaluated which slot range of a mapping search,
// where a serving request spent its life between admission and reply.
// This module records that mapping cheaply enough to leave compiled in.
//
// Design:
//   * One fixed-capacity ring buffer per thread.  The owning thread is
//     the only writer — no locks, no CAS on the hot path.  A full ring
//     drops the *oldest* events (the interesting tail of a run survives)
//     and counts what it dropped.
//   * Event sites cost one relaxed atomic load when tracing is disabled
//     (the `enabled()` check in the Span constructor / emit functions);
//     nothing else happens, nothing is allocated.
//   * A TraceSession is the RAII on/off guard: construction sizes the
//     rings and enables collection, stop() (or destruction) disables it.
//     Only one session may be active at a time.
//   * capture() snapshots every thread's ring into a time-sorted Capture.
//     It requires the session to be stopped AND the traced threads to be
//     quiescent (joined, or idle outside any Span) — the rings are
//     single-writer, so reading them concurrently with their owner would
//     be a data race.  In practice: destroy (or drain) the Scheduler /
//     Service under trace before capturing, as serve_demo and the
//     bench_e8/bench_e21 `--trace` flags do.
//
// Exporters live in trace/export.hpp: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) and an in-process summarizer
// (per-worker utilization, steal counts, critical path).  DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace harmony::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while a TraceSession is active.  One relaxed load — this is the
/// whole disabled-mode cost of every event site.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonic (steady-clock) nanoseconds.  All event timestamps share
/// this clock, so intervals measured on different threads compose.
[[nodiscard]] std::uint64_t now_ns();

enum class EventKind : std::uint8_t {
  kSpan,     ///< an interval [begin_ns, end_ns) on one thread
  kCounter,  ///< a sampled value at begin_ns (value in arg0)
};

/// One trace record.  `cat` and `name` must be string literals (or
/// otherwise outlive the session) — the ring stores the pointers.
struct Event {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  /// Correlation id stitching related events together (0 = none).  The
  /// serving layer uses the request id; the search uses the lane.
  std::uint64_t id = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t tid = 0;
  EventKind kind = EventKind::kSpan;
};

/// Records a completed span with explicit endpoints.  Used directly when
/// the endpoints were measured at different places (e.g. the serving
/// queue-wait span begins on the submitting thread and ends on the
/// dispatcher); prefer the RAII Span for same-thread intervals.
void emit_span(const char* cat, const char* name, std::uint64_t begin_ns,
               std::uint64_t end_ns, std::uint64_t id = 0,
               std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

/// Records a counter sample (rendered as a value track in Perfetto).
void emit_counter(const char* cat, const char* name, std::uint64_t value);

/// Names the calling thread in captures and exports ("sched-w3",
/// "serve-dispatch", ...).  Cheap; callable whether or not a session is
/// active (the name outlives sessions).
void set_thread_name(std::string name);

/// Total events dropped by full rings, summed over all threads, since
/// the current (or last) session began.  Safe to call while tracing is
/// live — this is what MetricsSnapshot::trace_dropped reports.
[[nodiscard]] std::uint64_t dropped_total();

/// RAII span: records [construction, destruction) on the calling thread.
/// Disabled-mode cost is the single relaxed load in the constructor.
class Span {
 public:
  explicit Span(const char* cat, const char* name, std::uint64_t id = 0,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
      : active_(enabled()) {
    if (!active_) return;
    cat_ = cat;
    name_ = name;
    id_ = id;
    arg0_ = arg0;
    arg1_ = arg1;
    begin_ns_ = now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    // Re-check enabled(): a session stopped mid-span must not record
    // into rings that a capture may be about to read.
    if (active_ && enabled()) {
      emit_span(cat_, name_, begin_ns_, now_ns(), id_, arg0_, arg1_);
    }
  }

  /// Updates the args recorded at span end (e.g. a result discovered
  /// while the span was open).
  void set_args(std::uint64_t arg0, std::uint64_t arg1) {
    arg0_ = arg0;
    arg1_ = arg1;
  }

 private:
  bool active_;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t arg0_ = 0;
  std::uint64_t arg1_ = 0;
};

/// Per-thread identity in a capture.
struct CapturedThread {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t events = 0;   ///< events retained in the capture
  std::uint64_t dropped = 0;  ///< events overwritten by ring wrap
};

/// A snapshot of every thread's ring, merged and time-sorted.
struct Capture {
  std::vector<Event> events;  ///< sorted by (begin_ns, tid)
  std::vector<CapturedThread> threads;
  std::uint64_t dropped = 0;  ///< sum over threads
};

/// Enables tracing for its lifetime.  At most one active at a time.
class TraceSession {
 public:
  /// `events_per_thread` is each ring's capacity; a thread that exceeds
  /// it keeps the newest events and counts the rest as dropped.
  explicit TraceSession(std::size_t events_per_thread = 1u << 14);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Disables event collection.  Idempotent; implied by destruction.
  void stop();

  /// Snapshots all rings.  Requires stop() first, and the traced
  /// threads to be quiescent (see file comment) — enforced for the
  /// session flag, by contract for quiescence.
  [[nodiscard]] Capture capture() const;

 private:
  bool stopped_ = false;
};

}  // namespace harmony::trace
