// Tests for the FFT family and its F&M specs (src/algos/fft).
#include <gtest/gtest.h>

#include <cmath>

#include "algos/fft.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/default_mapper.hpp"
#include "support/rng.hpp"

namespace harmony::algos {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) {
    v = Complex{rng.next_double(-1, 1), rng.next_double(-1, 1)};
  }
  return x;
}

double max_error(const std::vector<Complex>& a,
                 const std::vector<Complex>& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e = std::max(e, std::abs(a[i] - b[i]));
  }
  return e;
}

TEST(Fft, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011);
  EXPECT_EQ(bit_reverse(5, 4), 10);
  EXPECT_EQ(bit_reverse(0, 5), 0);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, DitMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n);
  const auto expect = dft_naive(x);
  fft_dit_radix2(x);
  EXPECT_LT(max_error(x, expect), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, DifMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n + 1);
  const auto expect = dft_naive(x);
  fft_dif_radix2(x);
  EXPECT_LT(max_error(x, expect), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 256u));

class FftRadix4Sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRadix4Sizes, Radix4MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 3 * n);
  const auto expect = dft_naive(x);
  fft_dit_radix4(x);
  EXPECT_LT(max_error(x, expect), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow4, FftRadix4Sizes,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft_dit_radix2(x), InvalidArgument);
  EXPECT_THROW(fft_dif_radix2(x), InvalidArgument);
  std::vector<Complex> y(8);  // power of two but not of four
  EXPECT_THROW(fft_dit_radix4(y), InvalidArgument);
}

TEST(Fft, FlopCountsFavourRadix4Multiplies) {
  const auto r2 = fft_flops_radix2(256);
  const auto r4 = fft_flops_radix4(256);
  EXPECT_LT(r4.mults, r2.mults);  // the classic radix-4 win
  EXPECT_NEAR(r2.total() / r4.total(), 1.0, 0.35);  // same O(n log n)
}

// --- F&M specs ----------------------------------------------------------

class FftSpecCheck : public ::testing::TestWithParam<bool> {};

TEST_P(FftSpecCheck, ReferenceEvaluationMatchesDft) {
  const bool dif = GetParam();
  const std::int64_t n = 16;
  auto x = random_signal(static_cast<std::size_t>(n), 9);
  const auto expect = dft_naive(x);

  FftSpecIds ids;
  const auto spec = fft_spec(n, dif, &ids);
  std::vector<double> xr(static_cast<std::size_t>(n));
  std::vector<double> xi(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    xr[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)].real();
    xi[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)].imag();
  }
  const auto out = spec.evaluate_reference({xr, xi});
  ASSERT_EQ(out.size(), 2u);
  const int stages = 4;
  for (std::int64_t i = 0; i < n; ++i) {
    // DIT emits natural order; DIF emits bit-reversed order.
    const std::int64_t at = dif ? bit_reverse(i, stages) : i;
    const double re = out[0][static_cast<std::size_t>(stages * n + at)];
    const double im = out[1][static_cast<std::size_t>(stages * n + at)];
    ASSERT_NEAR(re, expect[static_cast<std::size_t>(i)].real(), 1e-9);
    ASSERT_NEAR(im, expect[static_cast<std::size_t>(i)].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dataflows, FftSpecCheck, ::testing::Bool());

TEST(FftSpec, GridMachineExecutesDefaultMapping) {
  const std::int64_t n = 8;
  auto x = random_signal(static_cast<std::size_t>(n), 4);
  const auto expect = dft_naive(x);
  const auto spec = fft_spec(n, /*dif=*/false);

  const fm::MachineConfig cfg = fm::make_machine(4, 2);
  const fm::Mapping m = fm::default_mapping(spec, cfg);
  ASSERT_TRUE(fm::verify(spec, m, cfg).ok);

  std::vector<double> xr(static_cast<std::size_t>(n));
  std::vector<double> xi(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    xr[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)].real();
    xi[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)].imag();
  }
  const auto res = fm::GridMachine(cfg).run(spec, m, {xr, xi});
  const int stages = 3;
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_NEAR(res.outputs[0][static_cast<std::size_t>(stages * n + i)],
                expect[static_cast<std::size_t>(i)].real(), 1e-9);
    ASSERT_NEAR(res.outputs[1][static_cast<std::size_t>(stages * n + i)],
                expect[static_cast<std::size_t>(i)].imag(), 1e-9);
  }
}

TEST(FftSpec, DitAndDifDifferInMovementNotOps) {
  // E3's mechanism at unit-test scale: same op count, different
  // communication profile under a linear placement.
  const std::int64_t n = 32;
  const auto dit = fft_spec(n, false);
  const auto dif = fft_spec(n, true);
  EXPECT_DOUBLE_EQ(dit.total_ops(), dif.total_ops());

  const fm::MachineConfig cfg = fm::make_machine(static_cast<int>(n), 1);
  auto linear_map = [&](const auto& spec) {
    fm::Mapping m;
    // Element j of every stage lives on PE j; stage s at a time block.
    for (fm::TensorId t : spec.computed_tensors()) {
      m.set_computed(
          t,
          [](const fm::Point& p) {
            return noc::Coord{static_cast<int>(p.j), 0};
          },
          [t](const fm::Point& p) {
            // Two tensors (Xr, Xi) interleave on even/odd cycles; stage
            // blocks spaced far enough apart for cross-array hops.
            return fm::Cycle{32 + p.i * 3 * 32 + ((t % 2) == 0 ? 0 : 3)};
          });
    }
    for (fm::TensorId t : spec.input_tensors()) {
      m.set_input(t, fm::InputHome::at({0, 0}));
    }
    return m;
  };
  const auto dit_cost = fm::evaluate_cost(dit, linear_map(dit), cfg);
  const auto dif_cost = fm::evaluate_cost(dif, linear_map(dif), cfg);
  // Same total ops, same compute energy.
  EXPECT_DOUBLE_EQ(dit_cost.compute_energy.femtojoules(),
                   dif_cost.compute_energy.femtojoules());
  // Both move the same total bit-hops under this placement (spans are
  // mirrored), but both must move plenty.
  EXPECT_GT(dit_cost.bit_hops, 0u);
  EXPECT_GT(dif_cost.bit_hops, 0u);
}

}  // namespace
}  // namespace harmony::algos
