// Tests for graphs/BFS and list ranking (src/algos: graph, listrank).
#include <gtest/gtest.h>

#include "algos/connectivity.hpp"
#include "algos/graph.hpp"
#include "algos/listrank.hpp"

namespace harmony::algos {
namespace {

TEST(Graph, GridGraphStructure) {
  const CsrGraph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 2 * (3 * 3 + 2 * 4));  // 2*(h+v edges)
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(1), 3);   // edge
  EXPECT_EQ(g.degree(5), 4);   // interior
}

TEST(Graph, RandomGraphIsSymmetricAndDeterministic) {
  const CsrGraph g1 = random_graph(100, 300, 42);
  const CsrGraph g2 = random_graph(100, 300, 42);
  EXPECT_EQ(g1.offsets, g2.offsets);
  EXPECT_EQ(g1.targets, g2.targets);
  EXPECT_EQ(g1.num_edges(), 600);
  // Symmetry: count directed edges in both directions.
  std::vector<std::pair<std::int64_t, std::int64_t>> fwd;
  for (std::int64_t v = 0; v < g1.num_vertices(); ++v) {
    for (std::int64_t e = g1.offsets[static_cast<std::size_t>(v)];
         e < g1.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      fwd.emplace_back(v, g1.targets[static_cast<std::size_t>(e)]);
    }
  }
  auto rev = fwd;
  for (auto& [a, b] : rev) std::swap(a, b);
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST(Bfs, SerialDistancesOnGrid) {
  const CsrGraph g = grid_graph(4, 4);
  const auto res = bfs_serial(g, 0);
  EXPECT_EQ(res.dist[0], 0);
  EXPECT_EQ(res.dist[3], 3);        // (0,3)
  EXPECT_EQ(res.dist[15], 6);       // (3,3)
  EXPECT_GT(res.work, g.num_vertices());
}

TEST(Bfs, SerialUnreachableVertices) {
  // Two-node graph with no edges: vertex 1 unreachable.
  CsrGraph g;
  g.offsets = {0, 0, 0};
  const auto res = bfs_serial(g, 0);
  EXPECT_EQ(res.dist[0], 0);
  EXPECT_EQ(res.dist[1], -1);
}

class BfsAgreement
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::size_t>> {
};

TEST_P(BfsAgreement, PramMatchesSerial) {
  const auto [n, procs] = GetParam();
  const CsrGraph g = random_graph(n, 3 * n, 7);
  const auto serial = bfs_serial(g, 0);
  const auto pram = bfs_pram(g, 0, procs);
  EXPECT_EQ(pram.dist, serial.dist);
  EXPECT_GT(pram.stats.steps, 0);
}

TEST_P(BfsAgreement, XmtMatchesSerial) {
  const auto [n, procs] = GetParam();
  const CsrGraph g = random_graph(n, 3 * n, 13);
  const auto serial = bfs_serial(g, 0);
  pram::XmtConfig cfg;
  cfg.num_tcus = procs;
  const auto xmt = bfs_xmt(g, 0, cfg);
  EXPECT_EQ(xmt.dist, serial.dist);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsAgreement,
    ::testing::Combine(::testing::Values(std::int64_t{32}, std::int64_t{256},
                                         std::int64_t{1024}),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{16})));

TEST(Bfs, PramAndXmtOnHighDiameterGrid) {
  const CsrGraph g = grid_graph(20, 20);
  const auto serial = bfs_serial(g, 0);
  const auto pram = bfs_pram(g, 0, 8);
  const auto xmt = bfs_xmt(g, 0);
  EXPECT_EQ(pram.dist, serial.dist);
  EXPECT_EQ(xmt.dist, serial.dist);
  EXPECT_EQ(pram.levels, 39);  // (20-1)+(20-1)+1
  EXPECT_EQ(xmt.levels, 39);
}

TEST(Bfs, XmtIsWorkEfficientPramLevelSyncIsNot) {
  // The E7 mechanism: dense level-synchronous PRAM BFS rescans all
  // vertices every level (work ~ n * levels), the ps-based frontier
  // version touches each edge O(1) times.
  const CsrGraph g = grid_graph(16, 16);  // diameter 30
  const auto pram = bfs_pram(g, 0, 4);
  const auto xmt = bfs_xmt(g, 0);
  const auto n = g.num_vertices();
  const auto m = g.num_edges();
  // PRAM reads: at least n per relax round.
  EXPECT_GT(pram.stats.reads, 20 * n);
  // XMT work: bounded by a constant times edges + vertices.
  EXPECT_LT(xmt.stats.work, 8 * (n + m));
}

TEST(ListRank, SerialOnKnownList) {
  // 0 -> 1 -> 2 (terminal).
  LinkedList l;
  l.next = {1, 2, 2};
  l.head = 0;
  const auto r = list_rank_serial(l);
  EXPECT_EQ(r, (std::vector<std::int64_t>{2, 1, 0}));
}

class ListRankSizes
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::size_t>> {
};

TEST_P(ListRankSizes, PointerJumpingMatchesSerial) {
  const auto [n, procs] = GetParam();
  const LinkedList l = random_list(n, 19);
  const auto serial = list_rank_serial(l);
  const auto pram = list_rank_pram(l, procs);
  EXPECT_EQ(pram.rank, serial);
  // Depth is logarithmic: rounds == ceil(log2 n).
  std::int64_t expect_rounds = 0;
  std::int64_t span = 1;
  while (span < n) {
    span *= 2;
    ++expect_rounds;
  }
  EXPECT_EQ(pram.rounds, expect_rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListRankSizes,
    ::testing::Combine(::testing::Values(std::int64_t{1}, std::int64_t{2},
                                         std::int64_t{100},
                                         std::int64_t{1000}),
                       ::testing::Values(std::size_t{1}, std::size_t{8})));

TEST(Connectivity, SerialOnKnownGraph) {
  // Two components: {0,1,2} (path) and {3,4} (edge).
  CsrGraph g;
  g.offsets = {0, 1, 3, 4, 5, 6};
  g.targets = {1, 0, 2, 1, 4, 3};
  const auto label = components_serial(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
}

TEST(Connectivity, SamePartitionHelper) {
  EXPECT_TRUE(same_partition({0, 0, 5}, {7, 7, 2}));
  EXPECT_FALSE(same_partition({0, 0, 5}, {7, 2, 2}));
  EXPECT_FALSE(same_partition({0, 1, 2}, {0, 0, 2}));  // refinement only
  EXPECT_FALSE(same_partition({0, 0}, {0, 0, 0}));
}

class ConnectivitySweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::size_t>> {
};

TEST_P(ConnectivitySweep, PramMatchesSerialPartition) {
  const auto [n, procs] = GetParam();
  // Sparse graph so several components exist.
  const CsrGraph g = random_graph(n, n / 3 + 1, 77);
  const auto serial = components_serial(g);
  const auto pram = components_pram(g, procs);
  EXPECT_TRUE(same_partition(serial, pram.label))
      << "n=" << n << " P=" << procs;
  // Hook-and-jump converges in few rounds (log-ish, not linear).
  EXPECT_LE(pram.rounds, 4 * 64);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivitySweep,
    ::testing::Combine(::testing::Values(std::int64_t{16}, std::int64_t{128},
                                         std::int64_t{1024}),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{64})));

TEST(Connectivity, PramHandlesPathGraphWorstCase) {
  // A long path stresses the jumping phase.
  const std::int64_t n = 512;
  const CsrGraph g = grid_graph(1, n);
  const auto serial = components_serial(g);
  const auto pram = components_pram(g, 16);
  EXPECT_TRUE(same_partition(serial, pram.label));
  // One component; labels must all equal vertex 0's.
  for (std::int64_t v = 0; v < n; ++v) {
    EXPECT_EQ(pram.label[static_cast<std::size_t>(v)], pram.label[0]);
  }
  // Depth should be far below the serial chain length.
  EXPECT_LT(pram.rounds, 64);
}

TEST(Connectivity, SingleVertexAndEdgeless) {
  CsrGraph g;
  g.offsets = {0, 0, 0, 0};
  g.targets = {};
  const auto pram = components_pram(g, 4);
  EXPECT_EQ(pram.label, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(ListRank, WyllieWorkIsNLogN) {
  const std::int64_t n = 1024;
  const LinkedList l = random_list(n, 3);
  const auto pram = list_rank_pram(l, 16);
  // reads per round ~ 3n; rounds = 10 -> ~30n reads, far above serial n.
  EXPECT_GT(pram.stats.reads, 10 * n);
}

}  // namespace
}  // namespace harmony::algos
