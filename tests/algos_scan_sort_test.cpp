// Tests for scan/reduce and the sorting family (src/algos: scan, sort),
// including the traced/ARAM variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "algos/primitives.hpp"
#include "algos/samplesort.hpp"
#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "cache/aram.hpp"
#include "cache/traced.hpp"
#include "sched/scheduler.hpp"
#include "sched/workspan.hpp"
#include "support/rng.hpp"

namespace harmony::algos {
namespace {

TEST(Scan, SequentialInclusiveAndExclusive) {
  const std::vector<int> in{3, 1, 4, 1, 5};
  std::vector<int> inc;
  inclusive_scan_seq(in, inc);
  EXPECT_EQ(inc, (std::vector<int>{3, 4, 8, 9, 14}));
  std::vector<int> exc;
  const int total = exclusive_scan_seq(in, exc);
  EXPECT_EQ(exc, (std::vector<int>{0, 3, 4, 8, 9}));
  EXPECT_EQ(total, 14);
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, ParallelScanMatchesSerialAtAnySize) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::int64_t> in(n);
  for (auto& v : in) v = rng.next_int(-100, 100);
  std::vector<std::int64_t> expect;
  const std::int64_t expect_total = exclusive_scan_seq(in, expect);

  sched::WorkSpanCtx ctx;
  std::vector<std::int64_t> data = in;
  const std::int64_t total = exclusive_scan(ctx, data, /*grain=*/4);
  EXPECT_EQ(total, expect_total);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 17u,
                                           100u, 1000u, 4097u));

TEST(Scan, ReduceMatchesAccumulate) {
  Rng rng(5);
  std::vector<double> data(1234);
  for (auto& v : data) v = rng.next_double(-1, 1);
  sched::WorkSpanCtx ctx;
  const double got = reduce(ctx, data, 32);
  // Tree order differs from left fold; compare with tolerance.
  const double expect = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_NEAR(got, expect, 1e-9);
}

TEST(Scan, TracedVariantsAgreeOnValues) {
  const std::size_t n = 257;
  Rng rng(7);
  std::vector<double> init(n);
  for (auto& v : init) v = rng.next_double(0, 4);
  std::vector<double> expect;
  inclusive_scan_seq(init, expect);

  cache::AramCounter aram;
  cache::AddressSpace space;
  cache::TracedArray<double> in(init, space, aram);
  cache::TracedArray<double> out(n, space, aram);
  inclusive_scan_traced(in, out, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(out.raw()[i], expect[i], 1e-9);
  }

  cache::AramCounter aram2;
  cache::TracedArray<double> in2(init, space, aram2);
  cache::TracedArray<double> out2(n, space, aram2);
  cache::TracedArray<double> tmp(n, space, aram2);
  tree_scan_traced(in2, out2, tmp, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(out2.raw()[i], expect[i], 1e-9) << i;
  }
}

TEST(Scan, TreeScanWritesMoreThanSequentialScan) {
  // The ARAM tradeoff that E11 sweeps: the parallel-friendly schedule
  // costs ~3x the big-memory writes of the RAM scan.
  const std::size_t n = 1024;
  cache::AddressSpace space;
  cache::AramCounter seq;
  {
    cache::TracedArray<double> in(n, space, seq);
    cache::TracedArray<double> out(n, space, seq);
    inclusive_scan_traced(in, out, 0.0);
  }
  cache::AramCounter tree;
  {
    cache::TracedArray<double> in(n, space, tree);
    cache::TracedArray<double> out(n, space, tree);
    cache::TracedArray<double> tmp(n, space, tree);
    tree_scan_traced(in, out, tmp, 0.0);
  }
  EXPECT_EQ(seq.writes(), n);
  EXPECT_GT(tree.writes(), 2 * n);
  // The parallel-friendly schedule pays a persistent ARAM penalty at
  // every write-cost ratio.
  for (double omega : {1.0, 4.0, 16.0}) {
    EXPECT_GT(tree.cost(omega) / seq.cost(omega), 3.0) << omega;
  }
}

TEST(Primitives, PackKeepsFlaggedInOrder) {
  sched::WorkSpanCtx ctx;
  const std::vector<int> data{10, 11, 12, 13, 14, 15};
  const std::vector<char> flags{1, 0, 1, 1, 0, 1};
  const auto out = pack(ctx, data, flags, 2);
  EXPECT_EQ(out, (std::vector<int>{10, 12, 13, 15}));
}

TEST(Primitives, FilterMatchesCopyIf) {
  Rng rng(3);
  std::vector<std::int64_t> data(5000);
  for (auto& v : data) v = rng.next_int(-50, 50);
  sched::WorkSpanCtx ctx;
  const auto got =
      filter(ctx, data, [](std::int64_t v) { return v % 3 == 0; }, 64);
  std::vector<std::int64_t> expect;
  std::copy_if(data.begin(), data.end(), std::back_inserter(expect),
               [](std::int64_t v) { return v % 3 == 0; });
  EXPECT_EQ(got, expect);
  // Work-efficient, polylog span.
  EXPECT_LT(ctx.total_work(), 16.0 * static_cast<double>(data.size()));
  const double lg = std::log2(static_cast<double>(data.size()));
  EXPECT_LT(ctx.span(), 60.0 * lg * lg);
}

TEST(Primitives, SplitIsStableTwoWayPartition) {
  sched::WorkSpanCtx ctx;
  std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<char> flags{1, 0, 0, 1, 1, 0, 1, 0};
  const std::size_t pivot = split(ctx, data, flags, 2);
  EXPECT_EQ(pivot, 4u);
  EXPECT_EQ(data, (std::vector<int>{2, 3, 6, 8, 1, 4, 5, 7}));
}

class RadixSortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortSizes, MatchesStdSort) {
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  std::vector<std::uint64_t> data(n);
  for (auto& v : data) v = rng.next_below(1u << 20);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sched::WorkSpanCtx ctx;
  radix_sort(ctx, data, /*bits=*/20, 64);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortSizes,
                         ::testing::Values(0u, 1u, 7u, 100u, 1000u));

TEST(Primitives, RadixSortOnRealScheduler) {
  sched::Scheduler sched(4);
  sched::RealCtx ctx;
  Rng rng(12);
  std::vector<std::uint64_t> data(20000);
  for (auto& v : data) v = rng.next_below(1u << 16);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sched.run([&] { radix_sort(ctx, data, /*bits=*/16, 512); });
  EXPECT_EQ(data, expect);
}

TEST(Sort, SequentialMergeSortSorts) {
  auto keys = random_keys(1000, 3);
  merge_sort_seq(keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, ParallelMergeSortMatchesStdSort) {
  const std::size_t n = GetParam();
  auto keys = random_keys(n, n + 1);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  sched::WorkSpanCtx ctx;
  merge_sort_par(ctx, keys, /*grain=*/8);
  EXPECT_EQ(keys, expect);
}

TEST_P(SortSizes, TracedSortsMatchStdSort) {
  const std::size_t n = GetParam();
  if (n == 0) GTEST_SKIP();
  auto init = random_keys(n, 2 * n + 5);
  auto expect = init;
  std::sort(expect.begin(), expect.end());

  cache::AramCounter aram;
  cache::AddressSpace space;
  cache::TracedArray<std::int64_t> a(init, space, aram);
  merge_sort_traced(a);
  EXPECT_EQ(a.raw(), expect);

  for (std::size_t k : {2u, 4u, 8u}) {
    cache::AramCounter aram2;
    cache::TracedArray<std::int64_t> b(init, space, aram2);
    kway_merge_sort_traced(b, k);
    EXPECT_EQ(b.raw(), expect) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0u, 1u, 2u, 3u, 10u, 64u, 100u,
                                           1000u, 2048u));

TEST(Sort, UncachedKwaySortsAndExhibitsAramCrossover) {
  const std::size_t n = 4096;
  const auto init = random_keys(n, 21);
  auto expect = init;
  std::sort(expect.begin(), expect.end());

  cache::AddressSpace space;
  cache::AramCounter two;
  {
    cache::TracedArray<std::int64_t> a(init, space, two);
    merge_sort_traced(a);
  }
  cache::AramCounter uncached;
  {
    cache::TracedArray<std::int64_t> a(init, space, uncached);
    kway_merge_sort_uncached(a, 16);
    EXPECT_EQ(a.raw(), expect);
  }
  // Read-heavy but write-lean: loses at omega = 1, wins at omega = 64.
  EXPECT_LT(two.cost(1.0) / uncached.cost(1.0), 1.0);
  EXPECT_GT(two.cost(64.0) / uncached.cost(64.0), 1.0);
  EXPECT_GT(uncached.reads(), 4 * two.reads() / 2);
  EXPECT_LT(uncached.writes(), two.writes() / 2);
}

TEST(Sort, KwayWritesFewerBigMemoryWordsThanTwoWay) {
  const std::size_t n = 4096;
  const auto init = random_keys(n, 11);
  cache::AddressSpace space;
  cache::AramCounter two;
  {
    cache::TracedArray<std::int64_t> a(init, space, two);
    merge_sort_traced(a);
  }
  cache::AramCounter sixteen;
  {
    cache::TracedArray<std::int64_t> a(init, space, sixteen);
    kway_merge_sort_traced(a, 16);
  }
  // log_16(4096) = 3 passes vs log_2(4096) = 12 passes.
  EXPECT_LT(2 * sixteen.writes(), two.writes());
}

TEST(Sort, ParallelMergeSortHandlesDuplicatesAndSortedInput) {
  std::vector<std::int64_t> dup(500, 42);
  sched::WorkSpanCtx ctx;
  merge_sort_par(ctx, dup, 16);
  EXPECT_TRUE(std::is_sorted(dup.begin(), dup.end()));

  std::vector<std::int64_t> sorted(300);
  std::iota(sorted.begin(), sorted.end(), 0);
  auto expect = sorted;
  sched::WorkSpanCtx ctx2;
  merge_sort_par(ctx2, sorted, 16);
  EXPECT_EQ(sorted, expect);

  std::vector<std::int64_t> reversed(300);
  std::iota(reversed.rbegin(), reversed.rend(), 0);
  sched::WorkSpanCtx ctx3;
  merge_sort_par(ctx3, reversed, 16);
  EXPECT_TRUE(std::is_sorted(reversed.begin(), reversed.end()));
}

class BspSortSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BspSortSweep, SampleSortMatchesStdSort) {
  const auto [n, procs] = GetParam();
  const auto keys = random_keys(n, n * 13 + procs);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  const auto res = bsp_sample_sort(keys, procs);
  EXPECT_EQ(res.sorted, expect);
}

TEST_P(BspSortSweep, RootSortMatchesStdSort) {
  const auto [n, procs] = GetParam();
  const auto keys = random_keys(n, n * 17 + procs);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  const auto res = bsp_root_sort(keys, procs);
  EXPECT_EQ(res.sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BspSortSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{100},
                                         std::size_t{1000},
                                         std::size_t{5000}),
                       ::testing::Values(1, 4, 7, 16)));

TEST(BspSort, SampleSortSpreadsTheHRelation) {
  const std::size_t n = 1 << 14;
  const int procs = 16;
  const auto keys = random_keys(n, 5);
  const auto sample = bsp_sample_sort(keys, procs);
  const auto root = bsp_root_sort(keys, procs);
  // Root sort funnels ~2n words through rank 0; sample sort's biggest
  // h-relation is ~2n/P plus sampling noise.
  EXPECT_GT(root.stats.max_h_relation,
            4 * sample.stats.max_h_relation);
  // Both move every key across the network O(1) times.
  EXPECT_LT(sample.stats.total_words, 3 * n);
  EXPECT_LT(root.stats.total_words, 3 * n);
}

TEST(BspSort, HandlesDuplicateHeavyInput) {
  std::vector<std::int64_t> keys(4096, 7);
  for (std::size_t i = 0; i < keys.size(); i += 5) keys[i] = 3;
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  const auto res = bsp_sample_sort(keys, 8);
  EXPECT_EQ(res.sorted, expect);
}

TEST(Sort, MergeSortWorkIsNLogNAndSpanPolylog) {
  const std::size_t n = 1 << 12;
  auto keys = random_keys(n, 77);
  sched::WorkSpanCtx ctx;
  merge_sort_par(ctx, keys, 16);
  const double nlogn =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  EXPECT_LT(ctx.total_work(), 6.0 * nlogn);
  const double lg = std::log2(static_cast<double>(n));
  EXPECT_LT(ctx.span(), 60.0 * lg * lg * lg);
}

}  // namespace
}  // namespace harmony::algos
