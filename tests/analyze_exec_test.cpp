// analyze::ExecChecker — the axiomatic execution checker's contract:
// mutation self-tests (each EXEC axiom fired by exactly one witness
// corruption and no other), clean certification of real search winners
// across fixtures x drivers x worker counts, determinacy-race
// certification of the strategy lane kernel, and the checker-overhead
// bound (<5% of the tune it guards).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "analyze/diagnostic.hpp"
#include "analyze/exec.hpp"
#include "analyze/race.hpp"
#include "analyze/witness.hpp"
#include "fm/compiled.hpp"
#include "fm/idioms.hpp"
#include "fm/mapping.hpp"
#include "fm/search.hpp"
#include "fm/strategy/strategy.hpp"
#include "fm/strategy/table_map.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

namespace harmony::analyze {
namespace {

// ---------------------------------------------------------------------
// Mutation self-tests: a hand-built witness that checks clean, then one
// corruption per axiom.  "Exactly that rule" is the whole point — a
// checker whose axioms cascade cannot localize a violation.
// ---------------------------------------------------------------------

/// 2 PEs, 4 ops, every relation populated and consistent:
///   op0 (PE0, c0) -> op1 (PE0, c1)
///   op0 -> op2 (PE1, c1) -> op3 (PE1, c2)
/// Deliveries cover all three kinds (computed local, computed cross-PE,
/// DRAM input, PE-homed input); residency stays within capacity.
ExecWitness synthetic_exec_witness() {
  ExecWitness w;
  w.num_ops = 4;
  w.num_pes = 2;
  w.pe_capacity = 4;
  w.origin = "synthetic";
  w.op_pe = {0, 0, 1, 1};
  w.op_cycle = {0, 1, 1, 2};
  w.deps = {{0, 1}, {0, 2}, {2, 3}};
  w.deliveries = {
      {1, 0, 1, ExecWitness::Delivery::kComputed},   // op0 -> op1, local
      {2, 0, 1, ExecWitness::Delivery::kComputed},   // op0 -> op2, cross
      {3, 1, 2, ExecWitness::Delivery::kComputed},   // op2 -> op3, local
      {0, -1, 0, ExecWitness::Delivery::kInputDram},
      {1, 1, 1, ExecWitness::Delivery::kInputPe},    // homed on PE1
  };
  w.residency = {{0, 0, 2}, {0, 1, 3}, {1, 1, 3}, {1, 2, 3}};
  w.routable.assign(4, 1);
  return w;
}

/// Two workers, properly nested spans, disjoint grains, one sane steal.
ForkJoinWitness synthetic_forkjoin_witness() {
  ForkJoinWitness w;
  w.spans = {
      {"sched", "run", 1, 0, 200},  {"fm", "grain", 1, 10, 50},
      {"fm", "grain", 1, 60, 100},  {"sched", "run", 2, 0, 200},
      {"fm", "grain", 2, 10, 80},
  };
  w.grains = {{0, 0, 16, 1, 10, 50},
              {0, 16, 32, 1, 60, 100},
              {1, 32, 48, 2, 10, 80}};
  w.runs = {{0, 1, 0, 200}, {1, 2, 0, 200}};
  w.steals = {{1, 0, 50}};
  return w;
}

void expect_clean(const ExecReport& rep) {
  EXPECT_TRUE(rep.ok()) << diagnostics_json(rep.diagnostics);
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.warnings, 0u);
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_TRUE(rep.complete);
}

/// The mutation contract: the corrupted witness fires `rule` at least
/// once and *nothing else* — every stored diagnostic carries that one
/// id, and the severity totals equal its count.
void expect_exactly(const ExecReport& rep, const char* rule) {
  EXPECT_GE(rep.count(rule), 1u) << diagnostics_json(rep.diagnostics);
  for (const Diagnostic& d : rep.diagnostics) {
    EXPECT_EQ(d.rule_id, rule) << diagnostics_json(rep.diagnostics);
  }
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.errors + rep.warnings, rep.count(rule));
}

TEST(ExecMutation, SyntheticWitnessChecksClean) {
  const ExecReport rep = ExecChecker().check(synthetic_exec_witness());
  expect_clean(rep);
  EXPECT_EQ(rep.axioms_checked, 5u);
}

TEST(ExecMutation, ReversedDependenceEdgeFiresOnlyEXEC001) {
  ExecWitness w = synthetic_exec_witness();
  w.deps.push_back({1, 0});  // closes the cycle op0 <-> op1
  expect_exactly(ExecChecker().check(w), "EXEC001");
}

TEST(ExecMutation, OutOfDomainPeFiresOnlyEXEC002) {
  ExecWitness w = synthetic_exec_witness();
  w.op_pe[3] = w.num_pes;  // one past the mesh
  expect_exactly(ExecChecker().check(w), "EXEC002");
}

TEST(ExecMutation, DuplicateSlotFiresOnlyEXEC002) {
  ExecWitness w = synthetic_exec_witness();
  // A fifth op landing on op3's (PE, cycle) slot; it has no deps,
  // deliveries, or residency, so only slot integrity can object.
  w.num_ops = 5;
  w.op_pe.push_back(1);
  w.op_cycle.push_back(2);
  expect_exactly(ExecChecker().check(w), "EXEC002");
}

TEST(ExecMutation, LateDeliveryFiresOnlyEXEC003) {
  ExecWitness w = synthetic_exec_witness();
  w.deliveries[1].ready = 5;  // op2 executes at cycle 1
  expect_exactly(ExecChecker().check(w), "EXEC003");
}

TEST(ExecMutation, CapacityOverflowFiresOnlyEXEC004) {
  ExecWitness w = synthetic_exec_witness();
  w.pe_capacity = 1;  // both PEs hold 2 live values at their peak
  const ExecReport rep = ExecChecker().check(w);
  expect_exactly(rep, "EXEC004");
  EXPECT_EQ(rep.count("EXEC004"), 2u);  // flagged once per PE
}

TEST(ExecMutation, MissingRouteFiresOnlyEXEC005) {
  ExecWitness w = synthetic_exec_witness();
  w.routable[0 * 2 + 1] = 0;  // the op0 -> op2 delivery crosses PE0 -> PE1
  expect_exactly(ExecChecker().check(w), "EXEC005");
}

TEST(ExecMutation, UnknownDeliveryEndpointFiresOnlyEXEC005) {
  ExecWitness w = synthetic_exec_witness();
  w.deliveries[4].from_pe = 7;  // no such PE
  expect_exactly(ExecChecker().check(w), "EXEC005");
}

TEST(ExecMutation, SyntheticForkJoinWitnessChecksClean) {
  const ExecReport rep = ExecChecker().check(synthetic_forkjoin_witness());
  expect_clean(rep);
  EXPECT_EQ(rep.axioms_checked, 4u);
}

TEST(ExecMutation, UnnestedSpanFiresOnlyEXEC006) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  // Straddles the [10, 50) grain span's end on thread 1.
  w.spans.push_back({"fm", "straddler", 1, 40, 70});
  expect_exactly(ExecChecker().check(w), "EXEC006");
}

TEST(ExecMutation, LaneThreadMigrationFiresOnlyEXEC007) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.grains[1].tid = 2;  // lane 0's second grain hops threads
  expect_exactly(ExecChecker().check(w), "EXEC007");
}

TEST(ExecMutation, SameLaneTimeOverlapFiresOnlyEXEC007) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.grains[1].begin_ns = 40;  // starts before lane 0's first grain ends
  expect_exactly(ExecChecker().check(w), "EXEC007");
}

TEST(ExecMutation, GrainSlotOverlapFiresOnlyEXEC007) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.grains[2].lo = 24;  // re-evaluates slots [24, 32)
  expect_exactly(ExecChecker().check(w), "EXEC007");
}

TEST(ExecMutation, SelfStealFiresOnlyEXEC008) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.steals.push_back({1, 1, 60});
  expect_exactly(ExecChecker().check(w), "EXEC008");
}

TEST(ExecMutation, UnknownStealWorkerFiresOnlyEXEC008) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.steals[0].thief = 9;  // no run session for worker 9
  expect_exactly(ExecChecker().check(w), "EXEC008");
}

TEST(ExecMutation, StealOutsideRunSessionFiresOnlyEXEC008) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.steals[0].at_ns = 500;  // every run session ended at 200
  expect_exactly(ExecChecker().check(w), "EXEC008");
}

TEST(ExecMutation, DroppedEventsFireOnlyEXEC009AsWarning) {
  ForkJoinWitness w = synthetic_forkjoin_witness();
  w.dropped = 3;
  const ExecReport rep = ExecChecker().check(w);
  expect_exactly(rep, "EXEC009");
  EXPECT_TRUE(rep.ok());  // warning, not error: the verdict is advisory
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.warnings, 1u);
  EXPECT_FALSE(rep.complete);
}

TEST(ExecMutation, DiagnosticCapCountsPastIt) {
  ExecWitness w = synthetic_exec_witness();
  w.pe_capacity = 1;  // two EXEC004 diagnostics
  ExecOptions opts;
  opts.max_diagnostics = 1;
  const ExecReport rep = ExecChecker(opts).check(w);
  EXPECT_EQ(rep.errors, 2u);
  EXPECT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_EQ(rep.dropped, 1u);
}

// ---------------------------------------------------------------------
// Clean certification: winners of the real searchers, replayed through
// the witness builder, check clean — across spec families, both
// drivers, serial and 8 workers.
// ---------------------------------------------------------------------

struct MapFixture {
  std::string name;
  fm::FunctionSpec spec;
  fm::MachineConfig cfg;
  fm::Mapping proto;
  std::shared_ptr<const fm::CompiledSpec> cs;
};

/// Mirrors the parallel-search test fixtures: inputs block-distributed
/// over the mesh so affine candidates exist in the default space (DRAM
/// homes would price every candidate out of the small time grid).
MapFixture make_fixture(const std::string& family) {
  MapFixture f{family, fm::FunctionSpec{}, fm::make_machine(1, 1),
               fm::Mapping{}, nullptr};
  if (family == "editdist") {
    f.spec = algos::editdist_spec(8, 8, algos::SwScores{});
    f.cfg = fm::make_machine(8, 1);
  } else if (family == "stencil") {
    f.spec = algos::stencil1d_spec(12, 8);
    f.cfg = fm::make_machine(12, 1);
  } else {
    f.spec = algos::matmul_spec(6);
    f.cfg = fm::make_machine(6, 6);
  }
  for (const fm::TensorId t : f.spec.input_tensors()) {
    f.proto.set_input(
        t, fm::InputHome::distributed(
               fm::block_distribution(f.spec.domain(t), f.cfg.geom).place));
  }
  f.cs = fm::compile_spec(f.spec, f.cfg, f.proto);
  return f;
}

TEST(ExecWinners, AffineWinnersCheckCleanSerialAndParallel) {
  for (const char* family : {"editdist", "stencil", "matmul"}) {
    SCOPED_TRACE(family);
    const MapFixture f = make_fixture(family);
    fm::SearchOptions opts;
    opts.compiled = f.cs;
    const fm::SearchResult serial =
        fm::search_affine(f.spec, f.cfg, f.proto, opts);
    ASSERT_TRUE(serial.found);
    expect_clean(ExecChecker().check(
        build_exec_witness(*f.cs, serial.best.map)));

    sched::Scheduler pool(8);
    fm::SearchOptions par = opts;
    par.scheduler = &pool;
    const fm::SearchResult parallel =
        fm::search_affine(f.spec, f.cfg, f.proto, par);
    ASSERT_TRUE(parallel.found);
    expect_clean(ExecChecker().check(
        build_exec_witness(*f.cs, parallel.best.map)));
  }
}

TEST(ExecWinners, TableWinnersCheckCleanBothDriversSerialAndParallel) {
  for (const char* family : {"editdist", "stencil", "matmul"}) {
    const MapFixture f = make_fixture(family);
    for (const fm::StrategyKind kind :
         {fm::StrategyKind::kAnneal, fm::StrategyKind::kBeam}) {
      SCOPED_TRACE(std::string(family) + "/" + fm::to_string(kind));
      fm::StrategyOptions opts;
      opts.compiled = f.cs;
      opts.chains = 2;
      opts.epochs = 4;
      opts.iters_per_epoch = 48;
      opts.beam_width = 4;
      opts.beam_moves = 8;
      const fm::StrategyResult serial =
          fm::search_table(f.spec, f.cfg, f.proto, kind, opts);
      ASSERT_TRUE(serial.found);
      expect_clean(ExecChecker().check(
          build_exec_witness(*f.cs, serial.best)));

      sched::Scheduler pool(8);
      fm::StrategyOptions par = opts;
      par.scheduler = &pool;
      const fm::StrategyResult parallel =
          fm::search_table(f.spec, f.cfg, f.proto, kind, par);
      ASSERT_TRUE(parallel.found);
      expect_clean(ExecChecker().check(
          build_exec_witness(*f.cs, parallel.best)));
    }
  }
}

// ---------------------------------------------------------------------
// Race certification of the strategy lane kernel (satellite a): the
// anneal/beam fan-out replayed under the determinacy-race detector,
// plus the seeded-race negative control proving the detector would
// catch sharing if someone introduced it.
// ---------------------------------------------------------------------

TEST(ExecStrategyLanes, LaneKernelCertifiedClean) {
  // Mirror of the drivers' access pattern: lane i reads its own Rng
  // (split before the fork, like the anneal chains / beam parents) and
  // writes exactly results[i].
  constexpr std::size_t kLanes = 4;
  RaceCtx ctx;
  std::vector<double> results(kLanes, 0.0);
  std::vector<Rng> rngs;
  Rng root(0x5eed);
  rngs.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) rngs.push_back(root.split());
  ctx.track("results", results.data(), results.size());
  ctx.track("rngs", rngs.data(), rngs.size());

  fm::strategy_lanes(ctx, kLanes, results.data(),
                     [&](auto& c, std::size_t i) {
                       sched::reader(c, rngs.data(), i);
                       Rng rng = rngs[i];
                       return static_cast<double>(rng.next_below(1000)) +
                              static_cast<double>(i);
                     });

  EXPECT_TRUE(ctx.clean())
      << diagnostics_json(ctx.diagnostics().diagnostics());
  EXPECT_EQ(ctx.race_count(), 0u);
  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_GE(results[i], static_cast<double>(i)) << "lane " << i;
  }
}

TEST(ExecStrategyLanes, SharedAccumulatorIsFlagged) {
  // Negative control: a lane body folding into one shared cell races
  // across lanes, and the detector must say so.
  RaceCtx ctx;
  std::vector<double> results(4, 0.0);
  std::vector<double> shared(1, 0.0);
  ctx.track("shared", shared.data(), shared.size());

  fm::strategy_lanes(ctx, results.size(), results.data(),
                     [&](auto& c, std::size_t i) {
                       sched::writer(c, shared.data(), 0);
                       shared[0] += static_cast<double>(i);
                       return shared[0];
                     });

  EXPECT_FALSE(ctx.clean());
  EXPECT_GE(ctx.race_count(), 1u);
  EXPECT_GE(ctx.diagnostics().count("RACE001"), 1u);
}

// ---------------------------------------------------------------------
// Overhead: the post-hoc check serve runs on every tune winner must
// cost well under 5% of the tune it guards.  The bound asserted is
// 20x in the other direction (check * 20 < tune), with the check
// taken as min-of-5 to shed scheduler noise.
// ---------------------------------------------------------------------

TEST(ExecOverhead, WitnessBuildAndCheckIsUnderFivePercentOfTune) {
  fm::TensorId rt = -1, qt = -1, ht = -1;
  const fm::FunctionSpec spec =
      algos::editdist_spec(16, 16, algos::SwScores{}, &rt, &qt, &ht);
  const fm::MachineConfig cfg = fm::make_machine(4, 1);
  fm::Mapping proto;
  proto.set_input(rt, fm::InputHome::dram());
  proto.set_input(qt, fm::InputHome::dram());
  const auto cs = fm::compile_spec(spec, cfg, proto);

  // A serving-realistic budget: the tune must dominate the check by
  // well over the asserted 20x.
  fm::StrategyOptions opts;
  opts.compiled = cs;
  opts.chains = 4;
  opts.epochs = 16;
  opts.iters_per_epoch = 256;

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const fm::StrategyResult r =
      fm::search_table(spec, cfg, proto, fm::StrategyKind::kAnneal, opts);
  const auto tune_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count();
  ASSERT_TRUE(r.found);

  std::int64_t check_ns = std::numeric_limits<std::int64_t>::max();
  for (int rep = 0; rep < 5; ++rep) {
    const auto c0 = Clock::now();
    const ExecWitness w = build_exec_witness(*cs, r.best);
    const ExecReport er = ExecChecker().check(w);
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             c0)
            .count();
    check_ns = std::min(check_ns, ns);
    EXPECT_TRUE(er.ok()) << diagnostics_json(er.diagnostics);
  }
  EXPECT_LT(check_ns * 20, tune_ns)
      << "check " << check_ns << " ns vs tune " << tune_ns << " ns";
}

}  // namespace
}  // namespace harmony::analyze
