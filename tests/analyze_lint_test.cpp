// Mapping linter (analyze/lint.hpp) and the structured-diagnostic core
// (analyze/diagnostic.hpp): stable rule IDs, severities, and the
// warning-tier rules over known-illegal and known-smelly mappings.
#include "analyze/lint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/strategy/delta.hpp"
#include "fm/strategy/table_map.hpp"
#include "analyze/diagnostic.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"
#include "fm/spec.hpp"
#include "support/table.hpp"

namespace harmony::analyze {
namespace {

using fm::IndexDomain;
using fm::InputHome;
using fm::Mapping;
using fm::OpCost;
using fm::Point;
using fm::TensorId;
using fm::ValueRef;

// --- registry stability -------------------------------------------------

TEST(DiagnosticRegistry, RuleIdsAndSeveritiesAreStable) {
  // These IDs are public contract: serving metrics export them, tests
  // assert them, harmony-lint prints them.  Append rules; never renumber.
  EXPECT_EQ(find_rule("FM001")->severity, Severity::kError);
  EXPECT_EQ(find_rule("FM002")->severity, Severity::kError);
  EXPECT_EQ(find_rule("FM003")->severity, Severity::kError);
  EXPECT_EQ(find_rule("FM004")->severity, Severity::kError);
  EXPECT_EQ(find_rule("FM005")->severity, Severity::kError);
  EXPECT_EQ(std::string(find_rule("FM005")->title), "fm-search-options");
  EXPECT_EQ(find_rule("FM101")->severity, Severity::kWarning);
  EXPECT_EQ(find_rule("FM102")->severity, Severity::kWarning);
  EXPECT_EQ(find_rule("FM103")->severity, Severity::kWarning);
  EXPECT_EQ(find_rule("FM104")->severity, Severity::kWarning);
  EXPECT_EQ(find_rule("RACE001")->severity, Severity::kError);
  EXPECT_EQ(find_rule("RACE002")->severity, Severity::kError);
  EXPECT_EQ(find_rule("FM999"), nullptr);
  EXPECT_EQ(rule_index("FM001"), 0);
  EXPECT_EQ(std::string(find_rule("FM101")->title), "fm-idle-pes");
  for (const RuleInfo& r : kRules) {
    EXPECT_NE(std::string(r.hint), "") << r.id;
  }
}

TEST(DiagnosticSinkTest, CountsPastCapacityAndTracksPerRule) {
  DiagnosticSink sink(2);
  for (int i = 0; i < 5; ++i) sink.add("FM002", Location{}, "dup slot");
  sink.add("FM101", Location{}, "idle");
  EXPECT_EQ(sink.diagnostics().size(), 2u);  // capacity-bounded storage
  EXPECT_EQ(sink.errors(), 5u);              // counters keep counting
  EXPECT_EQ(sink.warnings(), 1u);
  EXPECT_EQ(sink.dropped(), 4u);
  EXPECT_EQ(sink.count("FM002"), 5u);
  EXPECT_EQ(sink.count("FM101"), 1u);
  EXPECT_FALSE(sink.ok());
}

// --- linting an illegal mapping -----------------------------------------

TEST(Lint, IllegalMappingYieldsErrorDiagnosticsWithStableIds) {
  fm::TensorId rt = -1, qt = -1, ht = -1;
  const auto spec =
      algos::editdist_spec(6, 6, algos::SwScores{}, &rt, &qt, &ht);
  const fm::MachineConfig machine = fm::make_machine(2, 2);
  // Everything at PE (0,0), cycle 0: violates causality (operands can't
  // have arrived) and exclusivity (36 elements share one slot).
  fm::AffineMap am;
  am.cols = 2;
  am.rows = 2;
  Mapping m;
  m.set_computed(ht, am.place_fn(), am.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));

  LintOptions opts;
  opts.verify.max_messages = 256;  // keep every record: FM002 comes after
  opts.max_diagnostics = 256;      // the FM001 flood in emission order
  const LintReport rep = lint_mapping(spec, m, machine, opts);
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.errors, 0u);
  EXPECT_GT(rep.count("FM001"), 0u);
  EXPECT_GT(rep.count("FM002"), 0u);
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.rule_id == "FM001" || d.rule_id == "FM002") {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_NE(d.hint, "");
    }
  }
  // Location carries the space-time coordinates of the first violation.
  EXPECT_EQ(rep.diagnostics.front().location.pe, 0);
}

// --- linting legal-but-smelly mappings ----------------------------------

TEST(Lint, SerialMappingOnParallelMachineWarnsIdlePes) {
  const auto spec = algos::editdist_spec(8, 8, algos::SwScores{});
  const fm::MachineConfig machine = fm::make_machine(4, 1);
  const Mapping m = fm::serial_mapping(spec);

  const LintReport rep = lint_mapping(spec, m, machine);
  EXPECT_TRUE(rep.ok()) << rep.legality.first_message();
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.count("FM101"), 1u);
  EXPECT_EQ(rep.busy_pes, 1);
  EXPECT_EQ(rep.total_pes, 4);
  for (const Diagnostic& d : rep.diagnostics) {
    EXPECT_EQ(d.severity, Severity::kWarning) << d.rule_id;
  }
}

TEST(Lint, StorageHighWaterWarnsBeforeViolating) {
  const auto spec = algos::editdist_spec(8, 8, algos::SwScores{});
  fm::MachineConfig machine = fm::make_machine(1, 1);
  const Mapping m = fm::serial_mapping(spec);

  // Pass 1 at default capacity measures the peak; pass 2 shrinks the
  // capacity so the peak sits at 80% — above the 75% warning threshold,
  // below the 100% violation line.
  const LintReport probe = lint_mapping(spec, m, machine);
  const std::int64_t peak = probe.legality.peak_live_values;
  ASSERT_GT(peak, 0);
  EXPECT_EQ(probe.count("FM102"), 0u);  // 2^20 capacity: nowhere near

  machine.pe_capacity_values = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(peak) / 0.8));
  const LintReport rep = lint_mapping(spec, m, machine);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.legality.storage_violations, 0u);
  EXPECT_EQ(rep.count("FM102"), 1u);
  // The warning points at the PE where the high-water mark occurs.
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.rule_id == "FM102") {
      EXPECT_EQ(d.location.pe, rep.legality.peak_live_pe);
    }
  }
}

TEST(Lint, BandwidthHotspotWarnsBeforeViolating) {
  fm::TensorId rt = -1, qt = -1, ht = -1;
  const auto spec =
      algos::editdist_spec(12, 12, algos::SwScores{}, &rt, &qt, &ht);
  fm::MachineConfig machine = fm::make_machine(4, 1);
  const fm::WavefrontMap wf = fm::wavefront_map(12, 4);
  Mapping m;
  m.set_computed(ht, wf.place_fn(), wf.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));

  const LintReport probe = lint_mapping(spec, m, machine);
  ASSERT_TRUE(probe.ok()) << probe.legality.first_message();
  const double peak = probe.legality.peak_link_bits_per_cycle;
  ASSERT_GT(peak, 0.0);

  // Lower the link capacity so the measured peak lands at 80% of it.
  machine.link_bits_per_cycle = peak / 0.8;
  const LintReport rep = lint_mapping(spec, m, machine);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.legality.bandwidth_violations, 0u);
  EXPECT_EQ(rep.count("FM103"), 1u);
}

TEST(Lint, RecomputeOpportunityWarns) {
  // The fan-out chain from the recompute tests: s lives on PE 0, every
  // b(i) consumes s(i) remotely, and s's operands are all inputs — so
  // recompute at the consumer beats the wire by a wide margin.
  fm::FunctionSpec spec;
  const std::int64_t n = 16;
  const TensorId a = spec.add_input("a", IndexDomain(n), 32);
  const TensorId s = spec.add_computed(
      "s", IndexDomain(n),
      [a](const Point& p) {
        return std::vector<ValueRef>{{a, p}};
      },
      [](const Point&, const std::vector<double>& v) { return 2.0 * v[0]; },
      OpCost{.ops = 1.0, .bits = 32});
  const TensorId b = spec.add_computed(
      "b", IndexDomain(n),
      [s](const Point& p) {
        return std::vector<ValueRef>{{s, p}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0] + 1.0; },
      OpCost{.ops = 1.0, .bits = 32});
  spec.mark_output(b);

  const fm::MachineConfig cfg = fm::make_machine(16, 1);
  Mapping m;
  m.set_computed(s, [](const Point&) { return noc::Coord{0, 0}; },
                 [](const Point& p) { return fm::Cycle{p.i + 16}; });
  m.set_computed(
      b,
      [](const Point& p) {
        return noc::Coord{static_cast<int>(p.i), 0};
      },
      [](const Point& p) { return fm::Cycle{p.i + 64}; });
  m.set_input(a, InputHome::distributed([](const Point& p) {
                return noc::Coord{static_cast<int>(p.i), 0};
              }));

  const LintReport rep = lint_mapping(spec, m, cfg);
  EXPECT_TRUE(rep.ok()) << rep.legality.first_message();
  EXPECT_EQ(rep.count("FM104"), 1u);
}

TEST(Lint, TableMapOverloadMatchesLoweredMapping) {
  // A table-mapped candidate (the stochastic searchers' output) gets
  // the same report as its lowered Mapping: the overload forwards
  // through fm::to_mapping, so every rule sees the denoted schedule.
  const fm::FunctionSpec spec = algos::irregular_dag_spec(20, 3, 0xD46u);
  const fm::MachineConfig machine = fm::make_machine(4, 1);
  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  const auto cs = fm::compile_spec(spec, machine, proto);
  // The seed's cycles are globally distinct and strided for the worst
  // hop, so collapsing every op onto PE 0 stays causal and exclusive —
  // a legal all-serial table that should trip the idle-PE lint.
  fm::TableMap serial = fm::seed_table(*fm::build_strategy_spec(cs));
  for (auto& pe : serial.pe) pe = 0;

  const LintReport via_table = lint_mapping(spec, serial, machine);
  const LintReport via_mapping =
      lint_mapping(spec, fm::to_mapping(spec, serial), machine);

  EXPECT_TRUE(via_table.ok());  // the serial table is legal...
  EXPECT_GE(via_table.count("FM101"), 1u);  // ...but idles 3 of 4 PEs
  EXPECT_EQ(via_table.errors, via_mapping.errors);
  EXPECT_EQ(via_table.warnings, via_mapping.warnings);
  EXPECT_EQ(via_table.busy_pes, via_mapping.busy_pes);
  ASSERT_EQ(via_table.diagnostics.size(), via_mapping.diagnostics.size());
  for (std::size_t i = 0; i < via_table.diagnostics.size(); ++i) {
    EXPECT_EQ(via_table.diagnostics[i].rule_id,
              via_mapping.diagnostics[i].rule_id);
    EXPECT_EQ(via_table.diagnostics[i].message,
              via_mapping.diagnostics[i].message);
  }
}

// --- rendering ----------------------------------------------------------

TEST(Lint, JsonExportCarriesRuleIdsAndSeverities) {
  const auto spec = algos::editdist_spec(8, 8, algos::SwScores{});
  const fm::MachineConfig machine = fm::make_machine(4, 1);
  const LintReport rep =
      lint_mapping(spec, fm::serial_mapping(spec), machine);
  ASSERT_FALSE(rep.diagnostics.empty());

  const std::string json = diagnostics_json(rep.diagnostics);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rule\": \"FM101\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"hint\""), std::string::npos);
}

TEST(Lint, TableRendersOneRowPerDiagnostic) {
  std::vector<Diagnostic> diags;
  diags.push_back(make_diagnostic("FM002", Location{"H(1,1)", 3, 17},
                                  "two elements share PE 3 at cycle 17"));
  diags.push_back(make_diagnostic("RACE001", Location{"h[5]"},
                                  "determinacy race on h[5]"));
  std::ostringstream os;
  diagnostics_table(diags).print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("FM002"), std::string::npos);
  EXPECT_NE(text.find("RACE001"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
}

}  // namespace
}  // namespace harmony::analyze
