// Determinacy-race detector (analyze/race.hpp): SP-bags on the fork-join
// layer.  The positive cases seed deliberate races and assert the rule
// ID plus *both* access paths; the negative cases run every annotated
// shipped algorithm and assert a clean report alongside correct output.
#include "analyze/race.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/pram_scan.hpp"
#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "fm/search.hpp"
#include "sched/parallel_ops.hpp"

namespace harmony::analyze {
namespace {

TEST(RaceDetector, FlagsSeededWriteWriteRace) {
  RaceCtx ctx;
  std::vector<double> acc(4, 0.0);
  ctx.track("acc", acc.data(), acc.size());
  // Both branches write acc[0] with no intervening join: a textbook
  // determinacy race (the final value depends on execution order).
  ctx.fork2(
      [&] {
        ctx.work(1);
        ctx.writer(acc.data(), 0);
        acc[0] += 1.0;
      },
      [&] {
        ctx.work(1);
        ctx.writer(acc.data(), 0);
        acc[0] += 2.0;
      });
  ASSERT_EQ(ctx.race_count(), 1u);
  EXPECT_FALSE(ctx.clean());
  const auto& diags = ctx.diagnostics().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "RACE001");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  // The message names the region and carries the fork-tree path of both
  // accesses: left branch (.L) and right branch (.R) of the same fork.
  EXPECT_NE(diags[0].message.find("acc[0]"), std::string::npos);
  EXPECT_NE(diags[0].message.find(".L"), std::string::npos);
  EXPECT_NE(diags[0].message.find(".R"), std::string::npos);
  EXPECT_EQ(ctx.diagnostics().count("RACE001"), 1u);
}

TEST(RaceDetector, FlagsSeededReadWriteRace) {
  RaceCtx ctx;
  std::vector<std::int64_t> buf(8, 0);
  ctx.track("buf", buf.data(), buf.size());
  std::int64_t sink = 0;
  ctx.fork2(
      [&] {
        ctx.work(1);
        ctx.reader(buf.data(), 3);
        sink += buf[3];
      },
      [&] {
        ctx.work(1);
        ctx.writer(buf.data(), 3);
        buf[3] = 7;
      });
  ASSERT_EQ(ctx.race_count(), 1u);
  const auto& diags = ctx.diagnostics().diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "RACE002");
  EXPECT_NE(diags[0].message.find("buf[3]"), std::string::npos);
  EXPECT_NE(diags[0].message.find(".L"), std::string::npos);
  EXPECT_NE(diags[0].message.find(".R"), std::string::npos);
}

TEST(RaceDetector, SerialReuseAcrossJoinIsNotARace) {
  RaceCtx ctx;
  std::vector<double> v(2, 0.0);
  // Write in a branch, then read after the join: series, not parallel.
  ctx.fork2([&] { ctx.writer(v.data(), 0); v[0] = 1.0; },
            [&] { ctx.writer(v.data(), 1); v[1] = 2.0; });
  ctx.reader(v.data(), 0);
  ctx.reader(v.data(), 1);
  EXPECT_TRUE(ctx.clean());
}

TEST(RaceDetector, ParallelReadsDoNotRace) {
  RaceCtx ctx;
  std::vector<double> v(1, 3.0);
  double a = 0.0, b = 0.0;
  ctx.fork2([&] { ctx.reader(v.data(), 0); a = v[0]; },
            [&] { ctx.reader(v.data(), 0); b = v[0]; });
  EXPECT_TRUE(ctx.clean());
  EXPECT_EQ(a, b);
}

TEST(RaceDetector, EachRacyLocationReportedOnce) {
  RaceCtx ctx;
  std::vector<double> v(1, 0.0);
  for (int round = 0; round < 3; ++round) {
    ctx.fork2([&] { ctx.writer(v.data(), 0); },
              [&] { ctx.writer(v.data(), 0); });
  }
  // Rounds 2 and 3 re-shadow the same address; the location is reported
  // once, not once per conflicting pair.
  EXPECT_EQ(ctx.race_count(), 1u);
}

TEST(RaceDetector, MergeSortParIsCleanAndSorts) {
  RaceCtx ctx;
  std::mt19937_64 rng(42);
  std::vector<std::int64_t> data(1000);
  for (auto& x : data) x = static_cast<std::int64_t>(rng() % 1000);
  std::vector<std::int64_t> expect = data;
  std::sort(expect.begin(), expect.end());
  algos::merge_sort_par(ctx, data, /*grain=*/64);
  EXPECT_EQ(data, expect);
  EXPECT_TRUE(ctx.clean()) << ctx.diagnostics().diagnostics()[0].message;
}

TEST(RaceDetector, ExclusiveScanIsCleanAndCorrect) {
  RaceCtx ctx;
  std::vector<std::int64_t> data(777);
  std::iota(data.begin(), data.end(), 1);
  std::vector<std::int64_t> expect(data.size());
  const std::int64_t expect_total =
      algos::exclusive_scan_seq(data, expect);
  const std::int64_t total = algos::exclusive_scan(ctx, data, /*grain=*/32);
  EXPECT_EQ(total, expect_total);
  EXPECT_EQ(data, expect);
  EXPECT_TRUE(ctx.clean()) << ctx.diagnostics().diagnostics()[0].message;
}

TEST(RaceDetector, UpsweepDownsweepScanIsCleanAndCorrect) {
  RaceCtx ctx;
  std::vector<std::int64_t> data(300);
  std::iota(data.begin(), data.end(), 0);
  std::vector<std::int64_t> expect(data.size());
  const std::int64_t expect_total =
      algos::exclusive_scan_seq(data, expect);
  const std::int64_t total =
      algos::scan_upsweep_downsweep(ctx, data, /*grain=*/16);
  EXPECT_EQ(total, expect_total);
  EXPECT_EQ(data, expect);
  EXPECT_TRUE(ctx.clean()) << ctx.diagnostics().diagnostics()[0].message;
}

TEST(RaceDetector, SmithWatermanWavefrontIsCleanAndMatchesSerial) {
  RaceCtx ctx;
  const std::string r = "GGTTGACTAGGTTGACTA";
  const std::string q = "TGTTACGGTGTTACGG";
  const algos::SwScores s;
  const std::vector<double> expect = algos::smith_waterman_serial(r, q, s);
  const std::vector<double> got =
      algos::smith_waterman_forkjoin(ctx, r, q, s, /*grain=*/2);
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(ctx.clean()) << ctx.diagnostics().diagnostics()[0].message;
  // The work-span analyzer rides along for free.
  EXPECT_GT(ctx.workspan().total_work(), 0.0);
}

TEST(RaceDetector, ParallelSearchLaneKernelCertifiedClean) {
  // The parallel mapping-search kernel (fm::search_lanes) replayed under
  // the determinacy-race detector: lanes share only the tail-grain
  // ticket and the sticky cancel flag; every annotated write (per-lane
  // tally, per-grain processed flag, per-slot output) must land on a
  // disjoint index.  This is the certification the parallel search
  // backend ships with — if someone introduces sharing, this test names
  // the location.  The grain body receives its lane index explicitly
  // (never recovered from an address); per-lane scratch is reached
  // through it exactly as the real driver reaches its EvalContextPool.
  constexpr unsigned kLanes = 4;
  constexpr std::uint64_t kBegin = 8;
  constexpr std::uint64_t kEnd = 72;
  constexpr std::uint64_t kGrain = 4;
  const std::uint64_t num_grains = (kEnd - kBegin + kGrain - 1) / kGrain;

  RaceCtx ctx;
  std::vector<fm::SearchTally> tallies(kLanes);
  std::vector<std::uint8_t> processed(num_grains, 0);
  std::vector<std::uint32_t> evals(kEnd, 0);
  std::vector<std::uint64_t> lane_scratch(kLanes, 0);
  ctx.track("tallies", tallies.data(), tallies.size());
  ctx.track("processed", processed.data(), processed.size());
  ctx.track("evals", evals.data(), evals.size());
  ctx.track("lane_scratch", lane_scratch.data(), lane_scratch.size());

  bool lane_matches_tally = true;
  fm::search_lanes(
      ctx, kLanes, kBegin, kEnd, kGrain, /*cancel=*/{}, tallies.data(),
      processed.data(),
      [&](std::uint64_t lo, std::uint64_t hi, unsigned lane,
          fm::SearchTally& tally) {
        // The explicit lane index and the tally the kernel hands over
        // must agree — the contract that replaced address arithmetic.
        lane_matches_tally &= &tally == tallies.data() + lane;
        sched::writer(ctx, lane_scratch.data(), lane);
        lane_scratch[lane] += hi - lo;
        for (std::uint64_t slot = lo; slot < hi; ++slot) {
          sched::writer(ctx, evals.data(), slot);
          evals[slot] += 1;
          ++tally.enumerated;
        }
      });

  EXPECT_TRUE(ctx.clean())
      << diagnostics_json(ctx.diagnostics().diagnostics());
  EXPECT_EQ(ctx.race_count(), 0u);
  EXPECT_TRUE(lane_matches_tally);
  for (std::uint64_t g = 0; g < num_grains; ++g) {
    EXPECT_EQ(processed[g], 1u) << "grain " << g;
  }
  // Every slot in [begin, end) evaluated exactly once, none below begin.
  for (std::uint64_t s = 0; s < kEnd; ++s) {
    EXPECT_EQ(evals[s], s < kBegin ? 0u : 1u) << "slot " << s;
  }
  // The simulation deal is a static head share plus a round-robin tail,
  // so with at least as many grains as lanes every lane contributed;
  // their counters partition the range.
  std::uint64_t enumerated = 0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_GT(tallies[l].enumerated, 0u) << "lane " << l;
    EXPECT_EQ(lane_scratch[l], tallies[l].enumerated) << "lane " << l;
    enumerated += tallies[l].enumerated;
  }
  EXPECT_EQ(enumerated, kEnd - kBegin);
}

TEST(RaceDetector, ParallelSearchSharedAccumulatorIsFlagged) {
  // Negative control for the certification above: a grain body that
  // folds into one shared cell races across lanes, and the detector
  // must say so (write-write on the tracked region).
  RaceCtx ctx;
  std::vector<fm::SearchTally> tallies(2);
  std::vector<std::uint8_t> processed(4, 0);
  std::vector<double> shared(1, 0.0);
  ctx.track("shared", shared.data(), shared.size());

  fm::search_lanes(
      ctx, 2u, std::uint64_t{0}, std::uint64_t{16}, std::uint64_t{4},
      /*cancel=*/{}, tallies.data(), processed.data(),
      [&](std::uint64_t lo, std::uint64_t hi, unsigned /*lane*/,
          fm::SearchTally&) {
        for (std::uint64_t slot = lo; slot < hi; ++slot) {
          sched::writer(ctx, shared.data(), 0);
          shared[0] += static_cast<double>(slot);
        }
      });

  EXPECT_FALSE(ctx.clean());
  EXPECT_GE(ctx.race_count(), 1u);
  EXPECT_GE(ctx.diagnostics().count("RACE001"), 1u);
}

TEST(RaceDetector, AnnotationsCompileAwayOnOtherContexts) {
  // sched::reader / sched::writer are no-ops for contexts without the
  // members — the annotated kernels keep running under WorkSpanCtx.
  sched::WorkSpanCtx ws;
  std::vector<std::int64_t> data(100, 1);
  const std::int64_t total = algos::scan_upsweep_downsweep(ws, data, 8);
  EXPECT_EQ(total, 100);
  EXPECT_GT(ws.span(), 0.0);
}

}  // namespace
}  // namespace harmony::analyze
