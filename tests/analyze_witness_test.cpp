// Span→witness extraction (analyze/witness.hpp): golden round-trip
// from a synthetic span fixture, the grain digest's worker-count
// invariance on a real traced search, fork-join axioms holding on real
// captures, and the truncated-ring degradation to an EXEC009 advisory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "algos/editdist.hpp"
#include "analyze/diagnostic.hpp"
#include "analyze/exec.hpp"
#include "analyze/witness.hpp"
#include "fm/compiled.hpp"
#include "fm/idioms.hpp"
#include "fm/mapping.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"

namespace harmony::analyze {
namespace {

using trace::Capture;
using trace::TraceSession;
using trace::emit_span;

TEST(Witness, GoldenExtractionFromSyntheticSpans) {
  TraceSession session;
  emit_span("sched", "run", 100, 900, /*id=*/0, /*arg0=*/0);
  emit_span("sched", "run", 100, 900, /*id=*/0, /*arg0=*/1);
  emit_span("fm", "grain", 200, 300, /*id=*/0, /*arg0=*/0, /*arg1=*/16);
  emit_span("fm", "grain", 320, 400, /*id=*/0, /*arg0=*/16, /*arg1=*/32);
  emit_span("fm", "grain", 210, 380, /*id=*/1, /*arg0=*/32, /*arg1=*/48);
  emit_span("sched", "steal", 350, 350, /*id=*/0, /*arg0=*/1, /*arg1=*/0);
  emit_span("serve", "execute", 150, 850, /*id=*/7);
  session.stop();
  const Capture cap = session.capture();

  const ForkJoinWitness w = extract_forkjoin_witness(cap);
  EXPECT_EQ(w.spans.size(), 7u);
  EXPECT_EQ(w.dropped, 0u);
  EXPECT_TRUE(w.complete());

  ASSERT_EQ(w.grains.size(), 3u);
  ASSERT_EQ(w.runs.size(), 2u);
  ASSERT_EQ(w.steals.size(), 1u);
  EXPECT_EQ(w.steals[0].thief, 1u);
  EXPECT_EQ(w.steals[0].victim, 0u);
  EXPECT_EQ(w.steals[0].at_ns, 350u);
  // Runs carry the worker index from arg0.
  std::vector<std::uint64_t> workers;
  for (const ForkJoinWitness::Run& r : w.runs) workers.push_back(r.worker);
  std::sort(workers.begin(), workers.end());
  EXPECT_EQ(workers, (std::vector<std::uint64_t>{0, 1}));

  // The digest is the sorted (lo, hi) projection of the grains.
  const auto digest = grain_digest(w);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expect = {
      {0, 16}, {16, 32}, {32, 48}};
  EXPECT_EQ(digest, expect);
}

/// Runs one parallel affine search under a trace session and returns
/// the extracted witness.  The scheduler is destroyed before stop() so
/// the capture is quiescent.
ForkJoinWitness traced_search_witness(unsigned workers,
                                      std::uint64_t grain) {
  namespace fm = harmony::fm;
  namespace algos = harmony::algos;
  const fm::FunctionSpec spec =
      algos::editdist_spec(8, 8, algos::SwScores{});
  const fm::MachineConfig cfg = fm::make_machine(8, 1);
  fm::Mapping proto;
  for (const fm::TensorId t : spec.input_tensors()) {
    proto.set_input(
        t, fm::InputHome::distributed(
               fm::block_distribution(spec.domain(t), cfg.geom).place));
  }

  TraceSession session;
  {
    sched::Scheduler pool(workers);
    fm::SearchOptions opts;
    opts.scheduler = &pool;
    opts.grain = grain;
    const fm::SearchResult r = fm::search_affine(spec, cfg, proto, opts);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.exhausted);
  }
  session.stop();
  return extract_forkjoin_witness(session.capture());
}

TEST(Witness, GrainDigestInvariantAcrossWorkerCounts) {
  // Timestamps, lane assignment, and thread ids are timing-dependent;
  // the set of [lo, hi) grain slot ranges is fixed by the enumeration
  // geometry alone, so the digest pins byte-identical across pools.
  const ForkJoinWitness w2 = traced_search_witness(2, /*grain=*/16);
  const ForkJoinWitness w8 = traced_search_witness(8, /*grain=*/16);
  const auto d2 = grain_digest(w2);
  const auto d8 = grain_digest(w8);
  ASSERT_FALSE(d2.empty());
  EXPECT_EQ(d2, d8);
  // Grain ranges partition the enumeration: sorted, disjoint, adjacent.
  for (std::size_t i = 0; i < d2.size(); ++i) {
    EXPECT_LT(d2[i].first, d2[i].second);
    if (i > 0) {
      EXPECT_EQ(d2[i].first, d2[i - 1].second);
    }
  }
}

TEST(Witness, RealTracedSearchSatisfiesForkJoinAxioms) {
  for (const unsigned workers : {2u, 8u}) {
    SCOPED_TRACE(workers);
    const ForkJoinWitness w = traced_search_witness(workers, /*grain=*/16);
    EXPECT_TRUE(w.complete());
    const ExecReport rep = ExecChecker().check(w);
    EXPECT_TRUE(rep.ok()) << diagnostics_json(rep.diagnostics);
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_EQ(rep.warnings, 0u);
    EXPECT_EQ(rep.axioms_checked, 4u);
  }
}

TEST(Witness, TruncatedRingDegradesToEXEC009Advisory) {
  // A ring too small for the run drops the oldest events; the witness
  // carries the count and the checker answers with a warning — never a
  // false error, never a silently clean verdict.
  TraceSession session(/*events_per_thread=*/8);
  for (std::uint64_t i = 0; i < 64; ++i) {
    emit_span("fm", "grain", i * 10, i * 10 + 5, /*id=*/0,
              /*arg0=*/i * 16, /*arg1=*/(i + 1) * 16);
  }
  session.stop();
  const Capture cap = session.capture();
  ASSERT_GT(cap.dropped, 0u);

  const ForkJoinWitness w = extract_forkjoin_witness(cap);
  EXPECT_EQ(w.dropped, cap.dropped);
  EXPECT_FALSE(w.complete());

  const ExecReport rep = ExecChecker().check(w);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.count("EXEC009"), 1u);
  EXPECT_FALSE(rep.complete);
}

}  // namespace
}  // namespace harmony::analyze
