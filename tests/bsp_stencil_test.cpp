// Tests for the ghost-zone distributed stencil (src/algos/bsp_stencil).
#include <gtest/gtest.h>

#include "algos/bsp_stencil.hpp"
#include "algos/specs.hpp"
#include "support/rng.hpp"

namespace harmony::algos {
namespace {

class HaloSweep
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, int, std::int64_t>> {};

TEST_P(HaloSweep, MatchesSerialReferenceAtAnyHaloDepth) {
  const auto [steps, procs, halo] = GetParam();
  const std::int64_t n = 96;
  Rng rng(3 * steps + procs + halo);
  std::vector<double> u0(static_cast<std::size_t>(n));
  for (auto& v : u0) v = rng.next_double(-5, 5);

  const auto expect = stencil1d_reference(u0, steps);
  const auto res = bsp_stencil1d(u0, steps, procs, halo);
  ASSERT_EQ(res.u.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_NEAR(res.u[i], expect[i], 1e-9)
        << "i=" << i << " steps=" << steps << " P=" << procs
        << " halo=" << halo;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HaloSweep,
    ::testing::Combine(::testing::Values(std::int64_t{0}, std::int64_t{1},
                                         std::int64_t{5}, std::int64_t{24}),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(std::int64_t{1}, std::int64_t{3},
                                         std::int64_t{8})));

TEST(BspStencil, DeeperHalosMeanFewerRoundsMoreFlops) {
  const std::int64_t n = 256;
  const std::int64_t steps = 32;
  std::vector<double> u0(static_cast<std::size_t>(n), 1.0);
  u0[40] = 100.0;

  const auto h1 = bsp_stencil1d(u0, steps, 8, 1);
  const auto h8 = bsp_stencil1d(u0, steps, 8, 8);
  EXPECT_EQ(h1.rounds, 32);
  EXPECT_EQ(h8.rounds, 4);
  // Messages shrink by ~the halo depth; words stay ~linear in steps
  // (h cells per message x steps/h messages).
  EXPECT_GT(h1.stats.total_messages, 6 * h8.stats.total_messages);
  // Redundant boundary recompute: deeper halo does more flops.
  EXPECT_GT(h8.stats.total_flops, h1.stats.total_flops);
  // Results identical.
  for (std::size_t i = 0; i < h1.u.size(); ++i) {
    ASSERT_NEAR(h1.u[i], h8.u[i], 1e-9);
  }
}

TEST(BspStencil, ValidatesParameters) {
  std::vector<double> u0(64, 0.0);
  EXPECT_THROW((void)bsp_stencil1d(u0, 4, 0, 1), InvalidArgument);
  EXPECT_THROW((void)bsp_stencil1d(u0, 4, 8, 0), InvalidArgument);
  EXPECT_THROW((void)bsp_stencil1d(u0, 4, 7, 1), InvalidArgument);
  EXPECT_THROW((void)bsp_stencil1d(u0, 4, 32, 3), InvalidArgument);
}

}  // namespace
}  // namespace harmony::algos
