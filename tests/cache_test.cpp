// Tests for the cache hierarchy simulator, traced arrays, ideal-cache
// bounds, and ARAM accounting (src/cache).
#include <gtest/gtest.h>

#include "cache/aram.hpp"
#include "cache/cache.hpp"
#include "cache/ideal.hpp"
#include "cache/reuse.hpp"
#include "cache/traced.hpp"
#include "algos/transpose.hpp"
#include "support/rng.hpp"

namespace harmony::cache {
namespace {

CacheConfig tiny(std::size_t size, std::size_t line, std::size_t assoc) {
  return CacheConfig{"t", size, line, assoc};
}

TEST(CacheLevel, HitAfterMiss) {
  CacheLevel c(tiny(1024, 64, 0));
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(63, false).hit);   // same line
  EXPECT_FALSE(c.access(64, false).hit);  // next line
  EXPECT_EQ(c.stats().reads, 4u);
  EXPECT_EQ(c.stats().read_misses, 2u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // Fully associative, 4 lines of 64 B.
  CacheLevel c(tiny(256, 64, 0));
  for (Addr a = 0; a < 4; ++a) c.access(a * 64, false);
  c.access(0, false);             // touch line 0 -> line 1 is LRU
  c.access(4 * 64, false);        // evicts line 1
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(64, false).hit);  // line 1 was evicted
}

TEST(CacheLevel, DirtyEvictionReportsWriteback) {
  CacheLevel c(tiny(128, 64, 0));  // 2 lines
  c.access(0, true);               // dirty line 0
  c.access(64, false);
  const auto out = c.access(128, false);  // evicts LRU = line 0 (dirty)
  EXPECT_TRUE(out.evicted_dirty);
  EXPECT_EQ(out.victim_line, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheLevel, SetConflictsInDirectMapped) {
  // Direct-mapped, 4 sets of 64 B: addresses 0 and 256 share set 0.
  CacheLevel c(tiny(256, 64, 1));
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(256, false).hit);
  EXPECT_FALSE(c.access(0, false).hit);  // conflict-evicted
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel(tiny(100, 64, 0)), InvalidArgument);
  EXPECT_THROW(CacheLevel(tiny(1024, 63, 0)), InvalidArgument);
  EXPECT_THROW(CacheLevel(tiny(1024, 64, 3)), InvalidArgument);
}

TEST(Hierarchy, MissPropagatesThroughLevels) {
  CacheHierarchy h({tiny(128, 64, 0), tiny(1024, 64, 0)});
  h.read(0, 4);
  EXPECT_EQ(h.level_stats(0).read_misses, 1u);
  EXPECT_EQ(h.level_stats(1).read_misses, 1u);
  EXPECT_EQ(h.memory_line_reads(), 1u);
  h.read(0, 4);  // L1 hit, nothing deeper
  EXPECT_EQ(h.level_stats(1).reads, 1u);
  EXPECT_EQ(h.memory_line_reads(), 1u);
}

TEST(Hierarchy, L2AbsorbsL1ConflictMisses) {
  CacheHierarchy h({tiny(128, 64, 0), tiny(4096, 64, 0)});
  for (int round = 0; round < 3; ++round) {
    for (Addr a = 0; a < 4; ++a) h.read(a * 64, 4);
  }
  // L1 (2 lines) thrashes; L2 (64 lines) holds everything after round 1.
  EXPECT_GT(h.level_stats(0).read_misses, 4u);
  EXPECT_EQ(h.level_stats(1).read_misses, 4u);
  EXPECT_EQ(h.memory_line_reads(), 4u);
}

TEST(Hierarchy, WriteMissIsAllocatingAndWritebackReachesMemory) {
  CacheHierarchy h({tiny(128, 64, 0)});
  h.write(0, 4);
  EXPECT_EQ(h.memory_line_reads(), 1u);  // write-allocate fill
  h.write(64, 4);
  h.write(128, 4);  // evicts dirty line 0 -> memory write
  EXPECT_EQ(h.memory_line_writes(), 1u);
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines) {
  CacheHierarchy h({tiny(1024, 64, 0)});
  h.read(60, 8);  // crosses the line boundary
  EXPECT_EQ(h.level_stats(0).reads, 2u);
}

TEST(Hierarchy, EmptyHierarchyCountsRawMemoryTraffic) {
  CacheHierarchy h({});
  h.read(0, 4);
  h.write(64, 4);
  EXPECT_EQ(h.memory_line_reads(), 1u);
  EXPECT_EQ(h.memory_line_writes(), 1u);
}

TEST(TracedArray, ReportsAccessesWithDistinctAddresses) {
  CacheHierarchy h = make_single_level(1024, 64);
  CacheSink sink(h);
  AddressSpace space;
  TracedArray<double> a(16, space, sink);
  TracedArray<double> b(16, space, sink);
  EXPECT_NE(a.base_address(), b.base_address());
  a.set(0, 1.5);
  EXPECT_DOUBLE_EQ(a.get(0), 1.5);
  EXPECT_EQ(h.level_stats(0).writes, 1u);
  EXPECT_EQ(h.level_stats(0).reads, 1u);
}

TEST(TracedArray, TeeSinkDuplicates) {
  CacheHierarchy h = make_single_level(1024, 64);
  CacheSink cs(h);
  AramCounter aram;
  TeeSink tee({&cs, &aram});
  AddressSpace space;
  TracedArray<int> a(8, space, tee);
  a.set(3, 7);
  (void)a.get(3);
  EXPECT_EQ(aram.reads(), 1u);
  EXPECT_EQ(aram.writes(), 1u);
  EXPECT_EQ(h.level_stats(0).accesses(), 2u);
}

TEST(Aram, CostScalesWithOmega) {
  AramCounter c;
  for (int i = 0; i < 10; ++i) c.on_read(0, 8);
  for (int i = 0; i < 5; ++i) c.on_write(0, 8);
  EXPECT_DOUBLE_EQ(c.cost(1.0), 15.0);
  EXPECT_DOUBLE_EQ(c.cost(4.0), 30.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.cost(16.0), 0.0);
}

TEST(IdealCache, ScanMissesMatchSimulatedSequentialScan) {
  const std::size_t n = 4096;
  CacheHierarchy h = make_single_level(32 * 1024, 64);
  CacheSink sink(h);
  AddressSpace space;
  TracedArray<double> a(n, space, sink);
  for (std::size_t i = 0; i < n; ++i) (void)a.get(i);
  const double predicted =
      scan_misses(IdealCache{32.0 * 1024, 64.0}, n, sizeof(double));
  const auto measured = static_cast<double>(h.level_stats(0).misses());
  EXPECT_NEAR(measured, predicted, predicted * 0.05 + 2.0);
}

// Property sweep: the cache-oblivious transpose must stay within a small
// constant of the ideal-cache bound across cache shapes, while the naive
// transpose blows past it once a row set exceeds the cache.
class ObliviousTranspose
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ObliviousTranspose, WithinConstantOfIdealBound) {
  const auto [n, cache_kib] = GetParam();
  CacheHierarchy h = make_single_level(cache_kib * 1024, 64);
  CacheSink sink(h);
  AddressSpace space;
  TracedArray<double> in(n * n, space, sink);
  TracedArray<double> out(n * n, space, sink);
  for (std::size_t i = 0; i < n * n; ++i) in.raw_mutable()[i] =
      static_cast<double>(i);
  algos::transpose_oblivious(in, out, n);
  // Validate the result itself.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(out.raw()[j * n + i], in.raw()[i * n + j]);
    }
  }
  const double bound = transpose_misses(
      IdealCache{static_cast<double>(cache_kib) * 1024, 64.0},
      static_cast<double>(n), sizeof(double));
  const auto measured = static_cast<double>(h.level_stats(0).misses());
  EXPECT_LT(measured, 4.0 * bound) << "n=" << n << " cache=" << cache_kib;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObliviousTranspose,
    ::testing::Combine(::testing::Values(64u, 128u, 256u),
                       ::testing::Values(8u, 32u, 128u)));

TEST(Reuse, DistancesOnKnownTrace) {
  ReuseProfiler prof(64);
  // Lines A, B, A, C, B, A  (8-byte accesses, distinct lines).
  const Addr a = 0;
  const Addr b = 64;
  const Addr c = 128;
  for (Addr addr : {a, b, a, c, b, a}) prof.on_read(addr, 8);
  EXPECT_EQ(prof.accesses(), 6u);
  EXPECT_EQ(prof.cold_misses(), 3u);
  // Reuses: A at distance 1, B at distance 2, A at distance 2.
  const auto& h = prof.histogram();
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(2), 2u);
  // Capacity 1 line: every reuse at distance >= 1 misses.
  EXPECT_EQ(prof.predicted_misses(1), 6u);
  EXPECT_EQ(prof.predicted_misses(2), 5u);
  EXPECT_EQ(prof.predicted_misses(3), 3u);   // everything fits
  EXPECT_EQ(prof.predicted_misses(64), 3u);  // compulsory floor
}

TEST(Reuse, PredictionsAreMonotoneInCapacity) {
  Rng rng(31);
  ReuseProfiler prof(64);
  for (int i = 0; i < 20000; ++i) {
    prof.on_read(rng.next_below(512) * 8, 8);
  }
  std::uint64_t prev = prof.predicted_misses(1);
  for (std::size_t lines = 2; lines <= 128; lines *= 2) {
    const std::uint64_t cur = prof.predicted_misses(lines);
    EXPECT_LE(cur, prev) << lines;
    prev = cur;
  }
}

// The profiler is a second implementation of LRU: its capacity-L
// prediction must equal the CacheLevel simulator's fully-associative
// L-line miss count exactly, on the same trace.
class ReuseVsSimulator : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReuseVsSimulator, ExactAgreementOnRandomAndKernelTraces) {
  const std::size_t lines = GetParam();

  // Random trace.
  {
    Rng rng(7);
    ReuseProfiler prof(64);
    CacheHierarchy sim = make_single_level(lines * 64, 64, 0);
    for (int i = 0; i < 30000; ++i) {
      const Addr addr = rng.next_below(256) * 64;
      prof.on_read(addr, 8);
      sim.read(addr, 8);
    }
    EXPECT_EQ(prof.predicted_misses(lines), sim.level_stats(0).misses());
  }
  // Transpose kernel trace.
  {
    const std::size_t n = 64;
    ReuseProfiler prof(64);
    CacheHierarchy sim = make_single_level(lines * 64, 64, 0);
    CacheSink sink(sim);
    TeeSink tee({&prof, &sink});
    AddressSpace space;
    TracedArray<double> in(n * n, space, tee);
    TracedArray<double> out(n * n, space, tee);
    algos::transpose_naive(in, out, n);
    EXPECT_EQ(prof.predicted_misses(lines), sim.level_stats(0).misses());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, ReuseVsSimulator,
                         ::testing::Values(std::size_t{1}, std::size_t{4},
                                           std::size_t{16}, std::size_t{64},
                                           std::size_t{256},
                                           std::size_t{1024}));

TEST(Reuse, WorkingSetKneeOfBlockedTranspose) {
  // The blocked kernel's working set is ~2 tiles; the naive kernel's is
  // ~a whole row set.  The knee estimate must reflect that ordering.
  const std::size_t n = 128;
  auto profile = [n](bool blocked) {
    ReuseProfiler prof(64);
    AddressSpace space;
    TracedArray<double> in(n * n, space, prof);
    TracedArray<double> out(n * n, space, prof);
    if (blocked) {
      algos::transpose_blocked(in, out, n, 16);
    } else {
      algos::transpose_naive(in, out, n);
    }
    return prof.working_set_lines();
  };
  EXPECT_LT(profile(true), profile(false));
}

TEST(Transpose, NaiveThrashesSmallCacheObliviousDoesNot) {
  const std::size_t n = 256;
  auto run = [n](auto kernel) {
    CacheHierarchy h = make_single_level(8 * 1024, 64);
    CacheSink sink(h);
    AddressSpace space;
    TracedArray<double> in(n * n, space, sink);
    TracedArray<double> out(n * n, space, sink);
    kernel(in, out);
    return h.level_stats(0).misses();
  };
  const auto naive = run([n](auto& in, auto& out) {
    algos::transpose_naive(in, out, n);
  });
  const auto oblivious = run([n](auto& in, auto& out) {
    algos::transpose_oblivious(in, out, n);
  });
  EXPECT_GT(static_cast<double>(naive),
            2.5 * static_cast<double>(oblivious));
}

}  // namespace
}  // namespace harmony::cache
