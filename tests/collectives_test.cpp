// Tests for the collective algorithms (src/comm/collectives).
#include <gtest/gtest.h>

#include "comm/collectives.hpp"
#include "support/rng.hpp"

namespace harmony::comm {
namespace {

std::vector<std::vector<double>> random_inputs(std::size_t p,
                                               std::size_t n,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> in(p, std::vector<double>(n));
  for (auto& v : in) {
    for (auto& x : v) x = rng.next_double(-1, 1);
  }
  return in;
}

std::vector<double> expected_sum(
    const std::vector<std::vector<double>>& in) {
  std::vector<double> sum(in[0].size(), 0.0);
  for (const auto& v : in) {
    for (std::size_t i = 0; i < v.size(); ++i) sum[i] += v[i];
  }
  return sum;
}

class AllreduceAlgos
    : public ::testing::TestWithParam<std::tuple<AllreduceAlgo,
                                                 std::size_t>> {};

TEST_P(AllreduceAlgos, EveryProcessGetsTheSum) {
  const auto [algo, p] = GetParam();
  const std::size_t n = 64;
  const auto in = random_inputs(p, n, p * 7 + 1);
  const auto expect = expected_sum(in);
  const CollectiveResult res = allreduce(in, algo);
  ASSERT_EQ(res.per_proc.size(), p);
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(res.per_proc[r][i], expect[i], 1e-9)
          << allreduce_name(algo) << " rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceAlgos,
    ::testing::Combine(::testing::Values(AllreduceAlgo::kNaiveRoot,
                                         AllreduceAlgo::kBinomialTree,
                                         AllreduceAlgo::kRecursiveDoubling,
                                         AllreduceAlgo::kRing),
                       ::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}, std::size_t{16})));

TEST(Allreduce, RingWorksForNonPowerOfTwoP) {
  const auto in = random_inputs(6, 66, 3);  // 6 | 66
  const auto expect = expected_sum(in);
  const CollectiveResult res = allreduce(in, AllreduceAlgo::kRing);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t i = 0; i < 66; ++i) {
      ASSERT_NEAR(res.per_proc[r][i], expect[i], 1e-9);
    }
  }
}

TEST(Allreduce, TreeRejectsNonPowerOfTwoP) {
  const auto in = random_inputs(6, 12, 3);
  EXPECT_THROW((void)allreduce(in, AllreduceAlgo::kBinomialTree),
               InvalidArgument);
  EXPECT_THROW((void)allreduce(in, AllreduceAlgo::kRecursiveDoubling),
               InvalidArgument);
}

TEST(Allreduce, RingMovesLeastVolumeRootMovesMost) {
  const std::size_t p = 16;
  const std::size_t n = 1024;
  const auto in = random_inputs(p, n, 9);
  const auto root = allreduce(in, AllreduceAlgo::kNaiveRoot);
  const auto ring = allreduce(in, AllreduceAlgo::kRing);
  const auto rd = allreduce(in, AllreduceAlgo::kRecursiveDoubling);
  // Ring total words = 2n(P-1); recursive doubling = nP log P;
  // naive root = 2n(P-1) too in total but with a Theta(nP) h-relation
  // at the root (its critical-path time is worse).
  EXPECT_LT(ring.stats.total_words, rd.stats.total_words);
  EXPECT_GT(root.stats.max_h_relation, ring.stats.max_h_relation * 4);
}

TEST(Allreduce, LatencyVsBandwidthRegimes) {
  const std::size_t p = 16;
  AlphaBeta model;  // alpha 1 us, beta 1 ns/word, barrier 2 us
  // Small vectors: fewer supersteps (recursive doubling) wins.
  {
    const auto in = random_inputs(p, 16, 1);
    const auto rd = allreduce(in, AllreduceAlgo::kRecursiveDoubling, model);
    const auto ring = allreduce(in, AllreduceAlgo::kRing, model);
    EXPECT_LT(rd.stats.time.picoseconds(), ring.stats.time.picoseconds());
  }
  // Large vectors: the bandwidth-optimal ring wins.
  {
    const auto in = random_inputs(p, 1 << 16, 2);
    const auto rd = allreduce(in, AllreduceAlgo::kRecursiveDoubling, model);
    const auto ring = allreduce(in, AllreduceAlgo::kRing, model);
    EXPECT_LT(ring.stats.time.picoseconds(), rd.stats.time.picoseconds());
  }
}

TEST(Allgather, RingConcatenatesEverywhere) {
  const std::size_t p = 8;
  const std::size_t blk = 16;
  const auto in = random_inputs(p, blk, 5);
  const CollectiveResult res = allgather_ring(in);
  for (std::size_t r = 0; r < p; ++r) {
    ASSERT_EQ(res.per_proc[r].size(), p * blk);
    for (std::size_t src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < blk; ++i) {
        ASSERT_NEAR(res.per_proc[r][src * blk + i], in[src][i], 1e-12)
            << "rank " << r << " block " << src;
      }
    }
  }
  // Volume: each rank forwards P-1 blocks.
  EXPECT_EQ(res.stats.total_words, p * (p - 1) * blk);
}

}  // namespace
}  // namespace harmony::comm
