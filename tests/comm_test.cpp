// Tests for the alpha-beta model, the BSP machine, and the distributed
// matmul variants against the communication lower bounds (src/comm).
#include <gtest/gtest.h>

#include "algos/matmul.hpp"
#include "comm/alphabeta.hpp"
#include "comm/bsp.hpp"
#include "comm/lower_bounds.hpp"
#include "support/rng.hpp"

namespace harmony::comm {
namespace {

TEST(AlphaBeta, MessageTimeAndEnergy) {
  AlphaBeta m;
  m.alpha = Time::nanoseconds(2.0);
  m.beta = Time::nanoseconds(0.5);
  EXPECT_DOUBLE_EQ(m.message_time(10).nanoseconds(), 7.0);
  EXPECT_DOUBLE_EQ(
      m.message_energy(4).nanojoules(),
      m.energy_per_message.nanojoules() + 4.0 * m.energy_per_word.nanojoules());
}

TEST(AlphaBeta, LedgerAggregatesAndPrices) {
  AlphaBeta m;
  CommLedger l;
  l.add_message(100);
  l.add_message(50);
  l.flops = 1000.0;
  EXPECT_EQ(l.messages, 2u);
  EXPECT_EQ(l.words, 150u);
  const Time t = l.time(m);
  EXPECT_DOUBLE_EQ(t.picoseconds(),
                   2.0 * m.alpha.picoseconds() +
                       150.0 * m.beta.picoseconds() +
                       1000.0 * m.flop.picoseconds());
  CommLedger l2;
  l2.add_message(10);
  l += l2;
  EXPECT_EQ(l.messages, 3u);
}

TEST(Bsp, MessagesDeliverNextSuperstepInSenderOrder) {
  BspMachine m(3);
  m.superstep([](BspMachine::Proc& p) {
    if (p.rank() != 0) {
      p.send(0, {static_cast<double>(p.rank())}, p.rank());
    }
  });
  std::vector<int> senders;
  m.superstep([&](BspMachine::Proc& p) {
    if (p.rank() == 0) {
      EXPECT_EQ(p.inbox().size(), 2u);
      for (const Message& msg : p.inbox()) senders.push_back(msg.src);
    }
  });
  EXPECT_EQ(senders, (std::vector<int>{1, 2}));
}

TEST(Bsp, InboxNotVisibleInSendingSuperstep) {
  BspMachine m(2);
  m.superstep([](BspMachine::Proc& p) {
    EXPECT_TRUE(p.inbox().empty());
    p.send(1 - p.rank(), {1.0});
  });
  m.superstep([](BspMachine::Proc& p) {
    EXPECT_EQ(p.inbox().size(), 1u);
  });
}

TEST(Bsp, CriticalPathCostUsesMaxHRelation) {
  AlphaBeta model;
  model.alpha = Time::nanoseconds(10.0);
  model.beta = Time::nanoseconds(1.0);
  model.barrier = Time::zero();
  BspMachine m(4, model);
  m.superstep([](BspMachine::Proc& p) {
    // Everyone sends 5 words to proc 0: h(0) = 15 received, h(i) = 5.
    if (p.rank() != 0) p.send(0, std::vector<double>(5, 1.0));
  });
  EXPECT_EQ(m.stats().max_h_relation, 15u);
  // time = alpha * 3 messages (at proc 0) + beta * 15.
  EXPECT_DOUBLE_EQ(m.stats().time.nanoseconds(), 10.0 * 3 + 15.0);
}

TEST(Bsp, StatsAccumulateOverSupersteps) {
  BspMachine m(2);
  for (int s = 0; s < 3; ++s) {
    m.superstep([](BspMachine::Proc& p) {
      p.send(1 - p.rank(), {1.0, 2.0});
      p.charge_flops(10.0);
    });
  }
  EXPECT_EQ(m.stats().supersteps, 3);
  EXPECT_EQ(m.stats().total_messages, 6u);
  EXPECT_EQ(m.stats().total_words, 12u);
  EXPECT_DOUBLE_EQ(m.stats().total_flops, 60.0);
}

TEST(Bsp, SendValidatesRank) {
  BspMachine m(2);
  EXPECT_THROW(m.superstep([](BspMachine::Proc& p) {
    p.send(5, {1.0});
  }),
               InvalidArgument);
}

TEST(LowerBounds, ShapesBehaveAsTheoryPredicts) {
  // Bandwidth bound decreases with P and with memory.
  EXPECT_GT(matmul_bandwidth_bound(512, 4, 1 << 14),
            matmul_bandwidth_bound(512, 16, 1 << 14));
  EXPECT_GT(matmul_bandwidth_bound(512, 4, 1 << 10),
            matmul_bandwidth_bound(512, 4, 1 << 14));
  // 2.5D: more replication, less bandwidth, fewer messages.
  EXPECT_GT(matmul_25d_bandwidth_bound(512, 16, 1),
            matmul_25d_bandwidth_bound(512, 16, 4));
  EXPECT_GT(matmul_25d_latency_bound(64, 1),
            matmul_25d_latency_bound(64, 4));
}

// --- distributed matmul: correctness + communication shape --------------

class BspMatmul : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BspMatmul, AllVariantsComputeTheProduct) {
  const std::size_t n = GetParam();
  Rng rng(17);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  const auto expect = algos::matmul_serial(a, b, n);

  const auto naive = algos::bsp_matmul_naive(a, b, n, 4);
  const auto summa = algos::bsp_matmul_summa(a, b, n, 4);
  const auto d25 = algos::bsp_matmul_25d(a, b, n, 8, 2);
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(naive.c[i], expect[i], 1e-9) << i;
    ASSERT_NEAR(summa.c[i], expect[i], 1e-9) << i;
    ASSERT_NEAR(d25.c[i], expect[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BspMatmul,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(BspMatmulComm, SummaMovesFewerWordsThanNaive) {
  const std::size_t n = 64;
  Rng rng(23);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  const auto naive = algos::bsp_matmul_naive(a, b, n, 16);
  const auto summa = algos::bsp_matmul_summa(a, b, n, 16);
  EXPECT_LT(summa.stats.total_words, naive.stats.total_words);
}

TEST(BspMatmulComm, ReplicationReducesWordsFurther) {
  const std::size_t n = 64;
  Rng rng(29);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  // Same P = 256: c = 1 (SUMMA degenerate) vs c = 4 replication.  (At
  // small P the replication overhead n^2*c/P dominates the 2n^2/sqrt(cP)
  // bandwidth saving — the crossover itself is part of bench E4.)
  const auto c1 = algos::bsp_matmul_25d(a, b, n, 256, 1);
  const auto c4 = algos::bsp_matmul_25d(a, b, n, 256, 4);
  EXPECT_LT(c4.stats.total_words, c1.stats.total_words);
}

TEST(BspMatmulComm, SummaWithinConstantOfBandwidthBound) {
  const std::size_t n = 64;
  const int procs = 16;
  Rng rng(31);
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  const auto summa = algos::bsp_matmul_summa(a, b, n, procs);
  const double per_proc =
      static_cast<double>(summa.stats.total_words) / procs;
  const double bound =
      matmul_25d_bandwidth_bound(static_cast<double>(n), procs, 1.0);
  EXPECT_LT(per_proc, 8.0 * bound);
  EXPECT_GT(per_proc, 0.5 * bound);
}

TEST(BspMatmulComm, ParameterValidation) {
  std::vector<double> a(16);
  std::vector<double> b(16);
  EXPECT_THROW((void)algos::bsp_matmul_naive(a, b, 4, 3),
               InvalidArgument);
  EXPECT_THROW((void)algos::bsp_matmul_summa(a, b, 4, 3),
               InvalidArgument);
  EXPECT_THROW((void)algos::bsp_matmul_25d(a, b, 4, 8, 3),
               InvalidArgument);
}

}  // namespace
}  // namespace harmony::comm
