// Compiled candidate evaluation (fm/compiled.hpp): bit-exact parity of
// the flat fast path against the legacy FunctionSpec oracles and the
// executing GridMachine ledger, the delivered-set key-packing overflow
// regression, EvalContext reuse, and precompiled parallel search parity.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"

namespace harmony::fm {
namespace {

/// Field-for-field CostReport equality — exact, not approximate: the
/// compiled path promises the identical floating-point addition
/// sequence, so EXPECT_EQ on the doubles is the contract.
void expect_cost_identical(const CostReport& a, const CostReport& b) {
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.makespan.picoseconds(), b.makespan.picoseconds());
  EXPECT_EQ(a.compute_energy.femtojoules(), b.compute_energy.femtojoules());
  EXPECT_EQ(a.onchip_movement_energy.femtojoules(),
            b.onchip_movement_energy.femtojoules());
  EXPECT_EQ(a.local_access_energy.femtojoules(),
            b.local_access_energy.femtojoules());
  EXPECT_EQ(a.dram_energy.femtojoules(), b.dram_energy.femtojoules());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bit_hops, b.bit_hops);
  EXPECT_EQ(a.total_ops, b.total_ops);
}

/// Full LegalityReport equality including diagnostics text and order.
void expect_legality_identical(const LegalityReport& a,
                               const LegalityReport& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.causality_violations, b.causality_violations);
  EXPECT_EQ(a.exclusivity_violations, b.exclusivity_violations);
  EXPECT_EQ(a.storage_violations, b.storage_violations);
  EXPECT_EQ(a.bandwidth_violations, b.bandwidth_violations);
  EXPECT_EQ(a.peak_live_values, b.peak_live_values);
  EXPECT_EQ(a.peak_live_pe, b.peak_live_pe);
  EXPECT_EQ(a.peak_link_bits_per_cycle, b.peak_link_bits_per_cycle);
  EXPECT_EQ(a.peak_link, b.peak_link);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].rule_id, b.diagnostics[i].rule_id)
        << "diag[" << i << "]";
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message)
        << "diag[" << i << "]";
    EXPECT_EQ(a.diagnostics[i].location.op, b.diagnostics[i].location.op)
        << "diag[" << i << "]";
    EXPECT_EQ(a.diagnostics[i].location.pe, b.diagnostics[i].location.pe)
        << "diag[" << i << "]";
    EXPECT_EQ(a.diagnostics[i].location.cycle,
              b.diagnostics[i].location.cycle)
        << "diag[" << i << "]";
  }
}

/// The full Mapping a (compiled-spec, AffineMap) pair describes, for
/// feeding the legacy oracles and the grid machine.
Mapping materialize(const FunctionSpec& spec, TensorId target,
                    const AffineMap& map, const Mapping& input_proto) {
  Mapping m;
  m.set_computed(target, map.place_fn(), map.time_fn());
  for (TensorId t : spec.input_tensors()) {
    m.set_input(t, input_proto.input_home(t));
  }
  return m;
}

/// A multi-input spec whose single schedule exercises all four input
/// dependence branches of the cost model at once:
///   - a is DRAM-homed; its values are re-read from different PEs and
///     re-read again from the same PE (DRAM access + repeat-use SRAM hit)
///   - b lives on PE (1,0); it is read from its home PE (local home),
///     from other PEs (remote home transfer), and repeatedly (SRAM hit)
///   - y(i) reads y(i-1) (cross-PE computed transfer) and y(i-4)
///     (same-PE computed local access under the x = i mod 4 placement).
struct FourBranch {
  FunctionSpec spec;
  TensorId a = -1, b = -1, y = -1;
};

FourBranch four_branch_spec() {
  FourBranch f;
  f.a = f.spec.add_input("a", IndexDomain(2));
  f.b = f.spec.add_input("b", IndexDomain(1));
  auto self = std::make_shared<TensorId>(-1);
  f.y = f.spec.add_computed(
      "y", IndexDomain(8),
      [a = f.a, b = f.b, self](const Point& p) {
        std::vector<ValueRef> d;
        d.push_back({a, Point{p.i % 2, 0, 0}});
        d.push_back({b, Point{0, 0, 0}});
        if (p.i >= 1) d.push_back({*self, Point{p.i - 1, 0, 0}});
        if (p.i >= 4) d.push_back({*self, Point{p.i - 4, 0, 0}});
        return d;
      },
      [](const Point&, const std::vector<double>& v) {
        double s = 0.0;
        for (const double x : v) s += x;
        return s;
      });
  *self = f.y;
  f.spec.mark_output(f.y);
  return f;
}

/// Input homes for the four-branch spec: a from DRAM, b on PE (1,0).
Mapping four_branch_proto(const FourBranch& f) {
  Mapping proto;
  proto.set_input(f.a, InputHome::dram());
  proto.set_input(f.b, InputHome::at({1, 0}));
  return proto;
}

/// A legal schedule for the four-branch spec on `cfg`: PE x = i mod 4,
/// time strides generously past every transit/DRAM latency.
AffineMap four_branch_map(const MachineConfig& cfg) {
  Cycle worst = 1;
  for (int x0 = 0; x0 < cfg.geom.cols(); ++x0) {
    const noc::Coord c{x0, 0};
    worst = std::max(worst, cfg.dram_cycles(c));
    for (int x1 = 0; x1 < cfg.geom.cols(); ++x1) {
      worst = std::max(worst, cfg.transit_cycles({x1, 0}, c));
    }
  }
  return AffineMap{.ti = worst + 1, .t0 = worst + 1, .xi = 1,
                   .cols = cfg.geom.cols(), .rows = cfg.geom.rows()};
}

TEST(CompiledCost, FourBranchSpecMatchesLegacyAndMachineLedger) {
  const FourBranch f = four_branch_spec();
  const MachineConfig cfg = make_machine(4, 1);
  const Mapping proto = four_branch_proto(f);
  const AffineMap amap = four_branch_map(cfg);
  const Mapping mapping = materialize(f.spec, f.y, amap, proto);

  // Sanity: the schedule is legal, and every branch is actually hit.
  const LegalityReport legal = verify(f.spec, mapping, cfg);
  ASSERT_TRUE(legal.ok) << legal.first_message();

  const CostReport legacy = evaluate_cost(f.spec, mapping, cfg);
  EXPECT_GT(legacy.dram_energy.femtojoules(), 0.0);       // a via DRAM
  EXPECT_GT(legacy.local_access_energy.femtojoules(), 0.0);  // SRAM hits
  EXPECT_GT(legacy.onchip_movement_energy.femtojoules(), 0.0);  // transfers
  EXPECT_GT(legacy.messages, 0u);

  const auto cs = compile_spec(f.spec, cfg, proto);
  EvalContext ctx(*cs);
  const CostReport compiled = evaluate_cost(*cs, amap, ctx);
  expect_cost_identical(compiled, legacy);

  const LegalityReport compiled_legal = verify(*cs, amap, ctx);
  expect_legality_identical(compiled_legal, legal);

  // The executing machine's ledger agrees field for field: the slots
  // run in ascending time order, which under this schedule is domain
  // order, so even the floating-point sums match exactly.
  const std::vector<double> a_data{3.0, 5.0};
  const std::vector<double> b_data{7.0};
  const auto res = GridMachine(cfg).run(f.spec, mapping, {a_data, b_data});
  EXPECT_EQ(res.makespan_cycles, legacy.makespan_cycles);
  EXPECT_EQ(res.compute_energy.femtojoules(),
            legacy.compute_energy.femtojoules());
  EXPECT_EQ(res.local_access_energy.femtojoules(),
            legacy.local_access_energy.femtojoules());
  EXPECT_EQ(res.dram_energy.femtojoules(), legacy.dram_energy.femtojoules());
  EXPECT_EQ(res.onchip_movement_energy.femtojoules(),
            legacy.onchip_movement_energy.femtojoules());
  EXPECT_EQ(res.messages, legacy.messages);
  EXPECT_EQ(res.bit_hops, legacy.bit_hops);
  EXPECT_EQ(res.outputs[0],
            f.spec.evaluate_reference({a_data, b_data})[0]);
}

TEST(CompiledCost, DeliveredKeyPackingOverflowRegression) {
  // A packed `value_index * num_pes + pe` key wraps uint64 once
  // value_index reaches 2^62 on a 4-PE machine: big(1) at PE 0 packed to
  // 4, and big(2^62 + 1) at PE 0 packed to (2^64 + 4) mod 2^64 = 4.  The
  // old tracking then mistook the second DRAM read for a repeat use of
  // the first value.  Pair-exact tracking must charge DRAM twice.
  const std::int64_t kBig = (std::int64_t{1} << 62) + 2;
  FunctionSpec spec;
  const TensorId big = spec.add_input("big", IndexDomain(kBig));
  spec.add_computed(
      "y", IndexDomain(2),
      [big](const Point& p) {
        std::vector<ValueRef> d;
        d.push_back({big, Point{p.i == 0 ? std::int64_t{1}
                                         : (std::int64_t{1} << 62) + 1,
                                0, 0}});
        return d;
      },
      [](const Point&, const std::vector<double>& v) { return v[0]; });

  const MachineConfig cfg = make_machine(2, 2);
  ASSERT_EQ(cfg.geom.num_nodes(), 4u);
  Mapping proto;
  proto.set_input(big, InputHome::dram());
  const AffineMap amap{.ti = 1, .cols = 2, .rows = 2};  // both at PE 0
  const Mapping mapping = materialize(spec, /*target=*/1, amap, proto);

  const CostReport legacy = evaluate_cost(spec, mapping, cfg);
  const Energy one_access = cfg.geom.dram_access_energy(32, {0, 0});
  EXPECT_EQ(legacy.dram_energy.femtojoules(),
            (one_access + one_access).femtojoules());
  EXPECT_EQ(legacy.local_access_energy.femtojoules(), 0.0);

  const auto cs = compile_spec(spec, cfg, proto);
  EvalContext ctx(*cs);
  expect_cost_identical(evaluate_cost(*cs, amap, ctx), legacy);
}

TEST(CompiledVerify, ViolatingSchedulesReportIdenticallyToLegacy) {
  const FourBranch f = four_branch_spec();
  const MachineConfig cfg = make_machine(4, 1);
  const Mapping proto = four_branch_proto(f);
  const auto cs = compile_spec(f.spec, cfg, proto);
  EvalContext ctx(*cs);

  // Everything on PE 0 at cycle 0: exclusivity pile-up plus causality
  // violations (inputs can't arrive by cycle 0, computed deps need a
  // cycle of transit).
  const AffineMap collide{.cols = 4, .rows = 1};
  // Time marches backwards: the negative-cycle early-return path.
  const AffineMap negative{.ti = -1, .xi = 1, .cols = 4, .rows = 1};

  for (const AffineMap& amap : {collide, negative}) {
    const Mapping mapping = materialize(f.spec, f.y, amap, proto);
    const LegalityReport legacy = verify(f.spec, mapping, cfg);
    EXPECT_FALSE(legacy.ok);
    expect_legality_identical(verify(*cs, amap, ctx), legacy);
  }
}

TEST(CompiledCost, EvalContextReuseAcrossCandidatesIsClean) {
  const FourBranch f = four_branch_spec();
  const MachineConfig cfg = make_machine(4, 1);
  const Mapping proto = four_branch_proto(f);
  const auto cs = compile_spec(f.spec, cfg, proto);
  const AffineMap good = four_branch_map(cfg);
  AffineMap other = good;
  other.xi = 2;  // different placement -> different delivered pattern

  // One context reused across candidates (the search's usage pattern):
  // evaluating `other` in between must not leak delivered state into the
  // re-evaluation of `good`.
  EvalContext ctx(*cs);
  const CostReport first = evaluate_cost(*cs, good, ctx);
  (void)evaluate_cost(*cs, other, ctx);
  (void)verify(*cs, other, ctx);
  expect_cost_identical(evaluate_cost(*cs, good, ctx), first);
  expect_legality_identical(verify(*cs, good, ctx),
                            verify(f.spec, materialize(f.spec, f.y, good,
                                                       proto), cfg));
}

TEST(CompiledLegality, VerifyOkAgreesWithFullVerifyAcrossTheFamily) {
  // The report-free short-circuit gate the search runs must agree with
  // the full verifier's ok bit on every candidate — legal, causality-
  // violating, colliding, and negative-time alike.  Sweep the whole
  // affine coefficient family the search enumerates.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(6, 6, s);
  const MachineConfig cfg = make_machine(6, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  const auto cs = compile_spec(spec, cfg, proto);
  const TensorId target = spec.computed_tensors()[0];
  EvalContext ctx(*cs);
  int checked = 0, legal = 0;
  for (std::int64_t ti : {-1, 0, 1, 2}) {
    for (std::int64_t tj : {0, 1, 2}) {
      for (std::int64_t xi : {-1, 0, 1}) {
        for (std::int64_t xj : {-1, 0, 1}) {
          for (std::int64_t t0 : {0, 12}) {
            const AffineMap map{.ti = ti, .tj = tj, .t0 = t0, .xi = xi,
                                .xj = xj, .cols = 6, .rows = 1};
            const bool full =
                verify(spec, materialize(spec, target, map, proto), cfg).ok;
            EXPECT_EQ(verify_ok(*cs, map, ctx), full)
                << "ti=" << ti << " tj=" << tj << " xi=" << xi
                << " xj=" << xj << " t0=" << t0;
            ++checked;
            legal += full ? 1 : 0;
          }
        }
      }
    }
  }
  EXPECT_EQ(checked, 216);
  EXPECT_GT(legal, 0);  // the sweep must exercise the accepting path too
}

TEST(CompiledSearch, WinnersMatchLegacyOraclesExactly) {
  // Search-driven parity: every candidate the compiled inner loop ranks
  // must carry the exact CostReport the legacy oracle computes for the
  // materialized mapping — and the legacy verifier must agree it's legal.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(8, 8, s);
  const MachineConfig cfg = make_machine(8, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  SearchOptions opts;
  opts.keep_all_legal = true;
  const SearchResult r = search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(r.found);
  ASSERT_FALSE(r.all_legal.empty());
  const TensorId target = spec.computed_tensors()[0];
  for (const Candidate& c : r.all_legal) {
    const Mapping m = materialize(spec, target, c.map, proto);
    EXPECT_TRUE(verify(spec, m, cfg).ok) << "slot " << c.slot;
    expect_cost_identical(c.cost, evaluate_cost(spec, m, cfg));
  }
}

TEST(CompiledSearch, PrecompiledSharedAcrossParallelLanesMatchesSerial) {
  // One CompiledSpec shared read-only by every lane (the serving layer's
  // usage): the parallel top-k must stay byte-identical to serial.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(8, 8, s);
  const MachineConfig cfg = make_machine(8, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  SearchOptions opts;
  opts.keep_all_legal = true;
  opts.compiled = compile_spec(spec, cfg, proto);

  const SearchResult serial = search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(serial.found);

  sched::Scheduler pool(4);
  SearchOptions par = opts;
  par.scheduler = &pool;
  const SearchResult parallel = search_affine(spec, cfg, proto, par);

  EXPECT_EQ(parallel.found, serial.found);
  EXPECT_EQ(parallel.enumerated, serial.enumerated);
  EXPECT_EQ(parallel.quick_rejected, serial.quick_rejected);
  EXPECT_EQ(parallel.verify_rejected, serial.verify_rejected);
  EXPECT_EQ(parallel.legal, serial.legal);
  ASSERT_EQ(parallel.top.size(), serial.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(parallel.top[i].slot, serial.top[i].slot) << "top[" << i << "]";
    EXPECT_EQ(parallel.top[i].merit, serial.top[i].merit)
        << "top[" << i << "]";
    expect_cost_identical(parallel.top[i].cost, serial.top[i].cost);
  }
  ASSERT_EQ(parallel.all_legal.size(), serial.all_legal.size());
  for (std::size_t i = 0; i < serial.all_legal.size(); ++i) {
    EXPECT_EQ(parallel.all_legal[i].slot, serial.all_legal[i].slot);
    EXPECT_EQ(parallel.all_legal[i].merit, serial.all_legal[i].merit);
  }
}

}  // namespace
}  // namespace harmony::fm
