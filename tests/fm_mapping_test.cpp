// Tests for mappings, the legality verifier, the cost evaluator, and the
// executing grid machine (src/fm: mapping, legality, cost, machine).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/idioms.hpp"
#include "support/rng.hpp"
#include "fm/cost.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/mapping.hpp"

namespace harmony::fm {
namespace {

/// Small edit-distance fixture mapped three ways.
struct EditDistFixture {
  std::string r = "GATTACA";
  std::string q = "GCATGCU";
  algos::SwScores scores;
  FunctionSpec spec;
  TensorId rt = -1, qt = -1, ht = -1;

  EditDistFixture() {
    spec = algos::editdist_spec(static_cast<std::int64_t>(r.size()),
                                static_cast<std::int64_t>(q.size()),
                                scores, &rt, &qt, &ht);
  }

  Mapping wavefront(int pes) const {
    Mapping m;
    const WavefrontMap wf =
        wavefront_map(static_cast<std::int64_t>(q.size()), pes);
    m.set_computed(ht, wf.place_fn(), wf.time_fn());
    m.set_input(rt, InputHome::at({0, 0}));
    m.set_input(qt, InputHome::at({0, 0}));
    return m;
  }
};

TEST(Mapping, CompletenessChecked) {
  EditDistFixture fx;
  Mapping m;
  EXPECT_THROW(m.require_complete(fx.spec), InvalidArgument);
  m = serial_mapping(fx.spec);
  EXPECT_NO_THROW(m.require_complete(fx.spec));
}

TEST(Mapping, AffineMapWrapsNegatives) {
  AffineMap m{.xi = -1, .cols = 4, .rows = 1};
  EXPECT_EQ(m.place(Point{1, 0}).x, 3);
  EXPECT_EQ(m.place(Point{4, 0}).x, 0);
  EXPECT_EQ(m.place(Point{9, 0}).x, 3);
}

TEST(Legality, SerialMappingIsLegal) {
  EditDistFixture fx;
  const MachineConfig machine = make_machine(4, 1);
  const LegalityReport rep =
      verify(fx.spec, serial_mapping(fx.spec), machine);
  EXPECT_TRUE(rep.ok) << rep.first_message();
  EXPECT_EQ(rep.total_violations(), 0u);
}

TEST(Legality, WavefrontMappingIsLegal) {
  EditDistFixture fx;
  for (int pes : {1, 2, 4, 7}) {
    const MachineConfig machine = make_machine(pes, 1);
    const LegalityReport rep =
        verify(fx.spec, fx.wavefront(pes), machine);
    EXPECT_TRUE(rep.ok) << "P=" << pes << ": "
                        << rep.first_message();
  }
}

TEST(Legality, PapersUnskewedScheduleIsCaught) {
  // The paper sketches "Map H(i,j) at i % P time floor(i/P)*N + j" — with
  // no skew, H(i,j) and H(i-1,j) are simultaneous.  The verifier must
  // reject it (DESIGN.md §4).
  EditDistFixture fx;
  const int pes = 4;
  const auto n_cols = static_cast<std::int64_t>(fx.q.size());
  Mapping m;
  m.set_computed(
      fx.ht,
      [pes](const Point& p) {
        return noc::Coord{static_cast<int>(p.i % pes), 0};
      },
      [n_cols, pes](const Point& p) {
        return (p.i / pes) * n_cols + p.j;
      });
  m.set_input(fx.rt, InputHome::at({0, 0}));
  m.set_input(fx.qt, InputHome::at({0, 0}));
  const MachineConfig machine = make_machine(pes, 1);
  const LegalityReport rep = verify(fx.spec, m, machine);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.causality_violations, 0u);
}

TEST(Legality, ExclusivityViolationDetected) {
  EditDistFixture fx;
  // Everything on one PE at cycle = i + j: anti-diagonal collisions.
  Mapping m;
  m.set_computed(
      fx.ht, [](const Point&) { return noc::Coord{0, 0}; },
      [](const Point& p) { return p.i + p.j; });
  m.set_input(fx.rt, InputHome::at({0, 0}));
  m.set_input(fx.qt, InputHome::at({0, 0}));
  const MachineConfig machine = make_machine(2, 1);
  const LegalityReport rep = verify(fx.spec, m, machine);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.exclusivity_violations, 0u);
}

TEST(Legality, StorageBoundViolationDetected) {
  EditDistFixture fx;
  MachineConfig machine = make_machine(2, 1);
  machine.pe_capacity_values = 4;  // far below |H| held to the end
  const LegalityReport rep =
      verify(fx.spec, serial_mapping(fx.spec), machine);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.storage_violations, 0u);
  EXPECT_GT(rep.peak_live_values, 4);
}

TEST(Legality, NegativeTimeRejected) {
  EditDistFixture fx;
  Mapping m;
  m.set_computed(
      fx.ht, [](const Point&) { return noc::Coord{0, 0}; },
      [](const Point& p) { return p.i - 100; });
  m.set_input(fx.rt, InputHome::at({0, 0}));
  m.set_input(fx.qt, InputHome::at({0, 0}));
  const LegalityReport rep = verify(fx.spec, m, make_machine(2, 1));
  EXPECT_FALSE(rep.ok);
}

TEST(Machine, SerialMappingReproducesReference) {
  EditDistFixture fx;
  const GridMachine machine(make_machine(2, 2));
  const auto res = machine.run(
      fx.spec, serial_mapping(fx.spec),
      {algos::encode_string(fx.r), algos::encode_string(fx.q)});
  const auto expect =
      algos::smith_waterman_serial(fx.r, fx.q, fx.scores);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0], expect);
}

class WavefrontExecution : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontExecution, ReproducesReferenceOnAnyWidth) {
  EditDistFixture fx;
  const int pes = GetParam();
  const GridMachine machine(make_machine(pes, 1));
  const auto res = machine.run(
      fx.spec, fx.wavefront(pes),
      {algos::encode_string(fx.r), algos::encode_string(fx.q)});
  const auto expect =
      algos::smith_waterman_serial(fx.r, fx.q, fx.scores);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0], expect);
  // Parallel mapping must beat the serial schedule length when P > 1.
  if (pes > 1) {
    const auto serial_cycles =
        static_cast<Cycle>(fx.r.size() * fx.q.size());
    EXPECT_LT(res.makespan_cycles, serial_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WavefrontExecution,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(Machine, IllegalMappingThrows) {
  EditDistFixture fx;
  Mapping m;
  m.set_computed(
      fx.ht, [](const Point&) { return noc::Coord{0, 0}; },
      [](const Point& p) { return p.i + p.j; });  // collides + too early
  m.set_input(fx.rt, InputHome::at({0, 0}));
  m.set_input(fx.qt, InputHome::at({0, 0}));
  const GridMachine machine(make_machine(2, 1));
  EXPECT_THROW(machine.run(fx.spec, m,
                           {algos::encode_string(fx.r),
                            algos::encode_string(fx.q)}),
               SimulationError);
}

TEST(Cost, AnalyticEvaluatorAgreesWithMachineLedger) {
  EditDistFixture fx;
  for (int pes : {1, 4}) {
    const MachineConfig cfg = make_machine(pes, 1);
    const Mapping m = fx.wavefront(pes);
    const CostReport cost = evaluate_cost(fx.spec, m, cfg);
    const auto exec = GridMachine(cfg).run(
        fx.spec, m,
        {algos::encode_string(fx.r), algos::encode_string(fx.q)});
    EXPECT_EQ(cost.makespan_cycles, exec.makespan_cycles);
    EXPECT_DOUBLE_EQ(cost.compute_energy.femtojoules(),
                     exec.compute_energy.femtojoules());
    EXPECT_DOUBLE_EQ(cost.onchip_movement_energy.femtojoules(),
                     exec.onchip_movement_energy.femtojoules());
    EXPECT_DOUBLE_EQ(cost.local_access_energy.femtojoules(),
                     exec.local_access_energy.femtojoules());
    EXPECT_DOUBLE_EQ(cost.dram_energy.femtojoules(),
                     exec.dram_energy.femtojoules());
    EXPECT_EQ(cost.messages, exec.messages);
    EXPECT_EQ(cost.bit_hops, exec.bit_hops);
  }
}

TEST(Cost, WavefrontBeatsSerialOnTimeSerialWinsNothing) {
  EditDistFixture fx;
  const MachineConfig cfg = make_machine(7, 1);
  const CostReport wf = evaluate_cost(fx.spec, fx.wavefront(7), cfg);
  const CostReport ser =
      evaluate_cost(fx.spec, serial_mapping(fx.spec), cfg);
  EXPECT_LT(wf.makespan_cycles, ser.makespan_cycles);
  EXPECT_DOUBLE_EQ(wf.compute_energy.femtojoules(),
                   ser.compute_energy.femtojoules());
}

TEST(Machine, Systolic2DMatmulOnSquareGrid) {
  // The classic 2-D systolic schedule: C(i,j,k) on PE (i,j) at
  // t = i + j + k (+ input-arrival offset) — output-stationary Cannon
  // timing.  Hand-built, verified, executed, validated.
  const std::int64_t n = 8;
  algos::MatmulSpecIds ids;
  const auto spec = algos::matmul_spec(n, &ids);
  const MachineConfig cfg = make_machine(static_cast<int>(n),
                                         static_cast<int>(n));

  Mapping m;
  const Cycle offset = static_cast<Cycle>(n);  // covers input transit
  m.set_computed(
      ids.c,
      [](const Point& p) {
        return noc::Coord{static_cast<int>(p.i), static_cast<int>(p.j)};
      },
      [offset](const Point& p) { return offset + p.i + p.j + p.k; });
  // Inputs pre-loaded block-wise (single-PE homes are hot-spots).
  for (TensorId t : spec.input_tensors()) {
    m.set_input(t, InputHome::distributed(
                       block_distribution(spec.domain(t), cfg.geom).place));
  }

  const LegalityReport rep = verify(spec, m, cfg);
  ASSERT_TRUE(rep.ok) << rep.first_message();

  Rng rng(5);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  const auto res = GridMachine(cfg).run(spec, m, {a, b});
  const auto expect = algos::matmul_serial(a, b, static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_NEAR(res.outputs[0][static_cast<std::size_t>(
                      (i * n + j) * n + (n - 1))],
                  expect[static_cast<std::size_t>(i * n + j)], 1e-9);
    }
  }
  // Makespan ~ 3n + offset, i.e. ~n^2/3 speedup over the serial n^3.
  EXPECT_LE(res.makespan_cycles, 4 * n + offset);
}

class FoldedWavefront : public ::testing::TestWithParam<int> {};

TEST_P(FoldedWavefront, VerifiesExecutesAndSlowsByTheFoldFactor) {
  // Build the full-width wavefront (one PE per row), then fold it onto
  // fewer physical columns; it must stay legal, still compute the right
  // matrix, and slow down by ~the fold factor.
  EditDistFixture fx;
  const int logical = static_cast<int>(fx.r.size());  // 7
  const int physical = GetParam();
  const WavefrontMap wf =
      wavefront_map(static_cast<std::int64_t>(fx.q.size()), logical);
  const FoldedMap folded =
      fold_columns(wf.place_fn(), wf.time_fn(), logical, physical);

  Mapping m;
  m.set_computed(fx.ht, folded.place, folded.time);
  m.set_input(fx.rt, InputHome::at({0, 0}));
  m.set_input(fx.qt, InputHome::at({0, 0}));
  const MachineConfig cfg = make_machine(physical, 1);
  const LegalityReport rep = verify(fx.spec, m, cfg);
  ASSERT_TRUE(rep.ok) << "P=" << physical << ": "
                      << rep.first_message();

  const auto res = GridMachine(cfg).run(
      fx.spec, m,
      {algos::encode_string(fx.r), algos::encode_string(fx.q)});
  EXPECT_EQ(res.outputs[0],
            algos::smith_waterman_serial(fx.r, fx.q, fx.scores));

  // Makespan scales by the fold factor (same schedule, stretched).
  const CostReport full = evaluate_cost(
      fx.spec, fx.wavefront(logical), make_machine(logical, 1));
  EXPECT_LE(res.makespan_cycles,
            full.makespan_cycles * folded.fold_factor +
                folded.fold_factor);
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldedWavefront, ::testing::Values(1, 2, 3,
                                                                   4, 7));

TEST(Mapping, AffineMapWrapsNegativeOffsetsAndYAxis) {
  // Negative coefficients and offsets on both grid axes: wrap() must
  // return a canonical non-negative representative however far negative
  // the raw affine form goes.
  AffineMap m{.xi = -3, .x0 = -7, .yj = -2, .y0 = -1, .cols = 5, .rows = 4};
  EXPECT_EQ(m.place(Point{0, 0}).x, 3);   // -7 mod 5
  EXPECT_EQ(m.place(Point{4, 0}).x, 1);   // -19 mod 5
  EXPECT_EQ(m.place(Point{10, 0}).x, 3);  // -37 mod 5
  EXPECT_EQ(m.place(Point{0, 0}).y, 3);   // -1 mod 4
  EXPECT_EQ(m.place(Point{0, 2}).y, 3);   // -5 mod 4
  EXPECT_EQ(m.place(Point{0, 7}).y, 1);   // -15 mod 4
  // Exact multiples of the modulus land on 0, not on cols/rows.
  AffineMap exact{.xi = -1, .yi = -1, .cols = 4, .rows = 2};
  EXPECT_EQ(exact.place(Point{8, 0}).x, 0);
  EXPECT_EQ(exact.place(Point{8, 0}).y, 0);
}

TEST(Mapping, FoldColumnsNonDivisibleTakesCeilFactor) {
  // 7 logical columns on 3 physical PEs: the fold factor must be
  // ceil(7/3) = 3, and the up-to-3 logical PEs folded onto one physical
  // PE must land in disjoint phases of the stretched cycle.
  const PlaceFn place = [](const Point& p) {
    return noc::Coord{static_cast<int>(p.i), 0};
  };
  const TimeFn time = [](const Point&) { return Cycle{5}; };
  const FoldedMap folded = fold_columns(place, time, 7, 3);
  EXPECT_EQ(folded.fold_factor, 3);
  // All 7 logical columns were co-scheduled at cycle 5; after folding,
  // each (physical PE, cycle) pair is used at most once.
  std::set<std::pair<int, Cycle>> slots;
  for (std::int64_t i = 0; i < 7; ++i) {
    const noc::Coord c = folded.place(Point{i, 0});
    EXPECT_LT(c.x, 3);
    const Cycle t = folded.time(Point{i, 0});
    EXPECT_GE(t, 15);  // 5 * fold_factor
    EXPECT_LE(t, 17);  // + at most (factor - 1) phases
    EXPECT_TRUE(slots.emplace(c.x, t).second)
        << "logical column " << i << " collides";
  }
}

TEST(Legality, FoldThatLengthensAWireFailsVerify) {
  // Nearest-neighbour chain x(i) <- x(i-1), mapped one element per PE
  // with a one-cycle systolic schedule: legal on the full-width array
  // (neighbours are 1 hop / 1 cycle apart).  Folding 16 columns onto 8
  // puts logical neighbours 7 and 8 on physical PEs 7 and 0 — a 7-hop
  // wire — while the fold only stretches their time gap to 3 cycles, so
  // the folded candidate must be *rejected* by the verifier: folding
  // generates candidates, the verifier disposes (mapping.hpp).
  const std::int64_t n = 16;
  FunctionSpec spec;
  const TensorId seed = spec.add_input("seed", IndexDomain(1));
  const TensorId x = spec.add_computed(
      "x", IndexDomain(n),
      [seed](const Point& p) {
        if (p.i == 0) return std::vector<ValueRef>{{seed, Point{0}}};
        return std::vector<ValueRef>{{1, Point{p.i - 1}}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0] + 1; });
  spec.mark_output(x);

  const PlaceFn place = [](const Point& p) {
    return noc::Coord{static_cast<int>(p.i), 0};
  };
  const TimeFn time = [](const Point& p) { return Cycle{p.i}; };

  Mapping full;
  full.set_computed(x, place, time);
  full.set_input(seed, InputHome::at({0, 0}));
  ASSERT_TRUE(verify(spec, full, make_machine(16, 1)).ok);

  const FoldedMap folded = fold_columns(place, time, 16, 8);
  Mapping m;
  m.set_computed(x, folded.place, folded.time);
  m.set_input(seed, InputHome::at({0, 0}));
  const LegalityReport rep = verify(spec, m, make_machine(8, 1));
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.causality_violations, 0u);
}

TEST(Mapping, FoldColumnsValidatesArguments) {
  EXPECT_THROW((void)fold_columns(nullptr, nullptr, 4, 2),
               InvalidArgument);
  const WavefrontMap wf = wavefront_map(4, 4);
  EXPECT_THROW((void)fold_columns(wf.place_fn(), wf.time_fn(), 0, 2),
               InvalidArgument);
}

TEST(Cost, MeritValuesMatchFields) {
  CostReport r;
  r.makespan = Time::picoseconds(100.0);
  r.compute_energy = Energy::femtojoules(50.0);
  EXPECT_DOUBLE_EQ(merit_value(r, FigureOfMerit::kTime), 100.0);
  EXPECT_DOUBLE_EQ(merit_value(r, FigureOfMerit::kEnergy), 50.0);
  EXPECT_DOUBLE_EQ(merit_value(r, FigureOfMerit::kEnergyDelay), 5000.0);
}

TEST(Machine, ConvWeightStationaryExecutesCorrectly) {
  const std::int64_t n_out = 12;
  const std::int64_t k = 4;
  auto build = algos::conv1d_weight_stationary(n_out, k);
  const MachineConfig cfg = make_machine(static_cast<int>(k), 1);
  const LegalityReport rep = verify(build.spec, build.mapping, cfg);
  ASSERT_TRUE(rep.ok) << rep.first_message();

  std::vector<double> x(static_cast<std::size_t>(n_out + k - 1));
  std::vector<double> w(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.25 * (1.0 + i);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0 - 0.5 * i;
  const auto res = GridMachine(cfg).run(build.spec, build.mapping, {x, w});
  const auto expect = algos::conv1d_reference(x, w);
  // y output is the last output tensor; slice k-1.
  const auto& y = res.outputs.back();
  for (std::int64_t i = 0; i < n_out; ++i) {
    ASSERT_NEAR(y[static_cast<std::size_t>(i * k + (k - 1))],
                expect[static_cast<std::size_t>(i)], 1e-9);
  }
}

}  // namespace
}  // namespace harmony::fm
