// fm::Pipeline — DAG composition, layout-aware handoff, and the two
// tuners (tests for src/fm/pipeline.cpp).
//
// The load-bearing cases:
//   * a single-stage pipeline must reproduce a plain search_affine bit
//     for bit (the pipeline layer adds nothing when there is nothing to
//     compose);
//   * a diamond DAG where two consumers pull the shared producer toward
//     conflicting layouts;
//   * a join stage mixing an external home with producer-fixed homes;
//   * greedy vs. paired on a chain engineered so the producer's locally
//     best layout is the consumer's worst — paired must not lose.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "algos/editdist.hpp"
#include "algos/pipelines.hpp"
#include "fm/cost.hpp"
#include "fm/pipeline.hpp"
#include "fm/search.hpp"
#include "support/error.hpp"

namespace harmony::fm {
namespace {

SearchOptions small_space() {
  SearchOptions so;
  so.space.time_coeffs = {0, 1, 2};
  so.space.space_coeffs = {-1, 0, 1};
  return so;
}

TEST(Pipeline, AddStageValidates) {
  Pipeline pipe;
  // Null spec.
  EXPECT_THROW(pipe.add_stage({"bad", nullptr, {}}), InvalidArgument);
  // Two computed tensors (editdist has H plus helper tensors? it has
  // exactly one computed tensor — use a two-computed spec instead).
  {
    FunctionSpec two;
    const TensorId x = two.add_input("x", IndexDomain(4), 32);
    const auto dep = [x](const Point& p) {
      return std::vector<ValueRef>{{x, p}};
    };
    const auto ev = [](const Point&, const std::vector<double>& v) {
      return v[0];
    };
    two.add_computed("a", IndexDomain(4), dep, ev);
    two.add_computed("b", IndexDomain(4), dep, ev);
    EXPECT_THROW(pipe.add_stage({"two", std::make_shared<const FunctionSpec>(
                                            std::move(two)),
                                 {StageInput::external(InputHome::dram())}}),
                 InvalidArgument);
  }
  const auto scan = std::make_shared<const FunctionSpec>(
      algos::scan_pass_spec(8));
  // Binding count mismatch.
  EXPECT_THROW(pipe.add_stage({"scan", scan, {}}), InvalidArgument);
  // Producer index out of range (no stage 0 yet).
  EXPECT_THROW(pipe.add_stage({"scan", scan, {StageInput::from(0)}}),
               InvalidArgument);
  ASSERT_EQ(pipe.add_stage(
                {"scan", scan, {StageInput::external(InputHome::dram())}}),
            0u);
  // Domain mismatch: producer target has extent 8, consumer input 16.
  const auto wide = std::make_shared<const FunctionSpec>(
      algos::pointwise_filter_spec(16));
  EXPECT_THROW(pipe.add_stage({"wide", wide, {StageInput::from(0)}}),
               InvalidArgument);
  // Self/forward reference: producer must be strictly earlier.
  const auto filt = std::make_shared<const FunctionSpec>(
      algos::pointwise_filter_spec(8));
  EXPECT_THROW(pipe.add_stage({"fwd", filt, {StageInput::from(1)}}),
               InvalidArgument);
  EXPECT_EQ(pipe.add_stage({"filter", filt, {StageInput::from(0)}}), 1u);

  const auto cons = pipe.consumers_of(0);
  ASSERT_EQ(cons.size(), 1u);
  EXPECT_EQ(cons[0].stage, 1u);
  EXPECT_EQ(cons[0].input_ord, 0u);
}

TEST(Pipeline, SingleStageMatchesPlainSearchBitForBit) {
  algos::SwScores s;
  const auto spec = std::make_shared<const FunctionSpec>(
      algos::editdist_spec(8, 8, s));
  const MachineConfig machine = make_machine(8, 1);

  Mapping proto;
  proto.set_input(0, InputHome::dram());
  proto.set_input(1, InputHome::dram());
  const SearchResult plain =
      search_affine(*spec, machine, proto, small_space());

  Pipeline pipe;
  pipe.add_stage({"editdist", spec,
                  {StageInput::external(InputHome::dram()),
                   StageInput::external(InputHome::dram())}});
  PipelineOptions opts;
  opts.search = small_space();
  opts.fom = opts.search.fom;
  const PipelineResult r = tune_pipeline_greedy(pipe, machine, opts);

  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.stages.size(), 1u);
  const StageResult& st = r.stages[0];
  // The committing run *is* a plain search: identical counters,
  // identical frontier, identical winner.
  EXPECT_EQ(st.search.enumerated, plain.enumerated);
  EXPECT_EQ(st.search.quick_rejected, plain.quick_rejected);
  EXPECT_EQ(st.search.verify_rejected, plain.verify_rejected);
  EXPECT_EQ(st.search.legal, plain.legal);
  ASSERT_EQ(st.search.top.size(), plain.top.size());
  for (std::size_t i = 0; i < plain.top.size(); ++i) {
    EXPECT_EQ(st.search.top[i].slot, plain.top[i].slot);
    EXPECT_DOUBLE_EQ(st.search.top[i].merit, plain.top[i].merit);
  }
  EXPECT_EQ(st.search.best.slot, plain.best.slot);
  EXPECT_DOUBLE_EQ(st.merit, plain.best.merit);
  // One stage: the pipeline totals are the stage's own report.
  EXPECT_EQ(r.total.makespan_cycles, st.cost.makespan_cycles);
  EXPECT_DOUBLE_EQ(r.total.total_energy().femtojoules(),
                   st.cost.total_energy().femtojoules());
  EXPECT_EQ(st.start_cycle, 0);
  EXPECT_EQ(st.finish_cycle, st.cost.makespan_cycles);
  EXPECT_EQ(r.probe_searches, 0u);
}

TEST(Pipeline, DiamondDagTunesEveryStageAndSchedulesTheJoin) {
  const Pipeline pipe = algos::diamond_pipeline(8);
  ASSERT_EQ(pipe.size(), 4u);
  const auto cons = pipe.consumers_of(0);
  ASSERT_EQ(cons.size(), 2u);  // filter and shuffle both read the scan

  const MachineConfig machine = make_machine(4, 1);
  PipelineOptions opts;
  opts.search = small_space();

  for (const bool paired : {false, true}) {
    const PipelineResult r =
        paired ? tune_pipeline_paired(pipe, machine, opts)
               : tune_pipeline_greedy(pipe, machine, opts);
    ASSERT_TRUE(r.found) << (paired ? "paired" : "greedy");
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(r.stages.size(), 4u);
    for (const StageResult& st : r.stages) {
      EXPECT_TRUE(st.found) << st.name;
      EXPECT_GT(st.cost.makespan_cycles, 0) << st.name;
    }
    // The join starts only after *both* middle stages finish, and the
    // middle stages only after the shared producer.
    const StageResult& scan = r.stages[0];
    const StageResult& filt = r.stages[1];
    const StageResult& shuf = r.stages[2];
    const StageResult& join = r.stages[3];
    EXPECT_EQ(filt.start_cycle, scan.finish_cycle);
    EXPECT_EQ(shuf.start_cycle, scan.finish_cycle);
    EXPECT_EQ(join.start_cycle,
              std::max(filt.finish_cycle, shuf.finish_cycle));
    EXPECT_EQ(r.total.makespan_cycles, join.finish_cycle);
    // Totals really are sums.
    const double sum = scan.cost.total_energy().femtojoules() +
                       filt.cost.total_energy().femtojoules() +
                       shuf.cost.total_energy().femtojoules() +
                       join.cost.total_energy().femtojoules();
    EXPECT_DOUBLE_EQ(r.total.total_energy().femtojoules(), sum);
    if (paired) {
      // The scan has two ready consumers; with >1 candidate each one
      // is probed per candidate.
      EXPECT_GT(r.probe_searches, 0u);
    } else {
      EXPECT_EQ(r.probe_searches, 0u);
    }
  }
}

TEST(Pipeline, JoinStageMixesExternalAndProducerHomes) {
  // combine(a, b) with a fed by a scan and b external on PE (1, 0):
  // the resolved prototype must keep the external home untouched and
  // substitute the producer's committed placement for a.
  const std::int64_t n = 8;
  fm::Pipeline pipe;
  const auto scan = std::make_shared<const FunctionSpec>(
      algos::scan_pass_spec(n));
  const auto comb = std::make_shared<const FunctionSpec>(
      algos::combine_spec(n));
  const std::size_t head = pipe.add_stage(
      {"scan", scan, {StageInput::external(InputHome::dram())}});
  pipe.add_stage({"combine", comb,
                  {StageInput::from(head),
                   StageInput::external(InputHome::at({1, 0}))}});

  const MachineConfig machine = make_machine(4, 1);
  PipelineOptions opts;
  opts.search = small_space();
  const PipelineResult r = tune_pipeline_greedy(pipe, machine, opts);
  ASSERT_TRUE(r.found);

  const Mapping proto =
      stage_input_proto(pipe, 1, opts.strategy, r);
  const auto ins = comb->input_tensors();
  ASSERT_EQ(ins.size(), 2u);
  // a: distributed over the scan winner's placement.
  const InputHome& ha = proto.input_home(ins[0]);
  ASSERT_EQ(ha.kind, InputHome::Kind::kDistributed);
  const AffineMap& winner = r.stages[0].affine;
  for (std::int64_t i = 0; i < n; ++i) {
    const Point p{i};
    EXPECT_EQ(ha.home_of(p), winner.place(p)) << "element " << i;
  }
  // b: the external PE home, untouched.
  const InputHome& hb = proto.input_home(ins[1]);
  ASSERT_EQ(hb.kind, InputHome::Kind::kPe);
  EXPECT_EQ(hb.pe, (noc::Coord{1, 0}));

  // And the committed stage cost is exactly the oracle's price for the
  // winner under that prototype — the handoff really is charged.
  Mapping full = proto;
  const TensorId target = comb->computed_tensors().front();
  const AffineMap& jm = r.stages[1].affine;
  full.set_computed(target, jm.place_fn(), jm.time_fn());
  const CostReport direct = evaluate_cost(*comb, full, machine);
  EXPECT_EQ(r.stages[1].cost.makespan_cycles, direct.makespan_cycles);
  EXPECT_DOUBLE_EQ(r.stages[1].cost.total_energy().femtojoules(),
                   direct.total_energy().femtojoules());
}

TEST(Pipeline, PairedNeverLosesToGreedyOnTheCannedChains) {
  const MachineConfig machine = make_machine(4, 1);
  PipelineOptions opts;
  opts.search = small_space();
  opts.pair_candidates = 4;
  for (const auto& [name, pipe] :
       {std::pair<const char*, Pipeline>{
            "fft", algos::fft_shuffle_fft_pipeline(16)},
        {"scan", algos::scan_filter_scan_pipeline(16)},
        {"diamond", algos::diamond_pipeline(8)}}) {
    const PipelineResult g = tune_pipeline_greedy(pipe, machine, opts);
    const PipelineResult p = tune_pipeline_paired(pipe, machine, opts);
    ASSERT_TRUE(g.found) << name;
    ASSERT_TRUE(p.found) << name;
    // Probe scoring ties break toward the greedy pick, so paired can
    // only match or improve the chain merit.
    EXPECT_LE(p.merit, g.merit * (1.0 + 1e-9)) << name;
  }
}

TEST(Pipeline, CancelCutsTuningAndReportsIncomplete) {
  const Pipeline pipe = algos::scan_filter_scan_pipeline(16);
  const MachineConfig machine = make_machine(4, 1);
  PipelineOptions opts;
  opts.search = small_space();
  opts.cancel = [] { return true; };  // cut before anything runs
  const PipelineResult r = tune_pipeline_greedy(pipe, machine, opts);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.completed);
}

TEST(Pipeline, StrategyStagesTuneTheIrregularChain) {
  const Pipeline pipe = algos::irregular_chain_pipeline(24, 3, 0xdadULL);
  const MachineConfig machine = make_machine(4, 1);
  PipelineOptions opts;
  opts.strategy = StrategyKind::kAnneal;
  opts.strategy_opts.chains = 2;
  opts.strategy_opts.epochs = 6;
  opts.strategy_opts.iters_per_epoch = 48;
  opts.pair_candidates = 2;
  const PipelineResult g = tune_pipeline_greedy(pipe, machine, opts);
  ASSERT_TRUE(g.found);
  ASSERT_EQ(g.stages.size(), 2u);
  for (const StageResult& st : g.stages) {
    EXPECT_GT(st.table.num_ops(), 0) << st.name;
    EXPECT_TRUE(st.strategy.found) << st.name;
  }
  // The tail stage's prototype resolves the head's per-element table
  // placement.
  const Mapping proto = stage_input_proto(pipe, 1, opts.strategy, g);
  const auto ins = pipe.stage(1).spec->input_tensors();
  const InputHome& h = proto.input_home(ins[0]);
  ASSERT_EQ(h.kind, InputHome::Kind::kDistributed);
  const TableMap& head = g.stages[0].table;
  for (std::int64_t lin = 0; lin < head.num_ops(); ++lin) {
    EXPECT_EQ(h.home_of(head.domain.delinearize(lin)), head.coord_of(lin));
  }

  const PipelineResult p = tune_pipeline_paired(pipe, machine, opts);
  ASSERT_TRUE(p.found);
  EXPECT_GT(p.probe_searches, 0u);
}

}  // namespace
}  // namespace harmony::fm
