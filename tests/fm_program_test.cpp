// Tests for multi-stage program execution (src/fm/program).
#include <gtest/gtest.h>

#include "algos/specs.hpp"
#include "fm/default_mapper.hpp"
#include "fm/program.hpp"
#include "support/rng.hpp"

namespace harmony::fm {
namespace {

/// Two chained stencil stages must equal one long stencil run.
TEST(Program, ChainedStencilsEqualOneLongStencil) {
  const std::int64_t n = 24;
  const std::int64_t t1 = 5;
  const std::int64_t t2 = 7;
  Rng rng(4);
  std::vector<double> u0(static_cast<std::size_t>(n));
  for (auto& v : u0) v = rng.next_double(0, 10);

  const auto spec1 = algos::stencil1d_spec(n, t1);
  const auto spec2 = algos::stencil1d_spec(n, t2);
  const MachineConfig cfg = make_machine(4, 2);
  const Mapping m1 = default_mapping(spec1, cfg);
  const Mapping m2 = default_mapping(spec2, cfg);

  // Joint: slice the last time-plane of stage 1's (t1+1) x n output into
  // stage 2's length-n input.
  Joint joint;
  joint.adapt = [n, t1](const std::vector<std::vector<double>>& outs) {
    std::vector<double> last(
        outs[0].begin() + static_cast<std::ptrdiff_t>(t1 * n),
        outs[0].begin() + static_cast<std::ptrdiff_t>((t1 + 1) * n));
    return std::vector<std::vector<double>>{std::move(last)};
  };
  joint.domain = IndexDomain(n);
  joint.produced = block_distribution(IndexDomain(n), cfg.geom);
  joint.consumed = block_distribution(IndexDomain(n), cfg.geom);

  const ProgramResult res = run_program(
      {{"stencilA", &spec1, &m1}, {"stencilB", &spec2, &m2}}, {joint},
      cfg, {u0});

  const auto expect = algos::stencil1d_reference(u0, t1 + t2);
  const auto& u_final = res.outputs[0];
  for (std::int64_t j = 0; j < n; ++j) {
    ASSERT_NEAR(u_final[static_cast<std::size_t>(t2 * n + j)],
                expect[static_cast<std::size_t>(j)], 1e-9);
  }
  ASSERT_EQ(res.joint_aligned.size(), 1u);
  EXPECT_TRUE(res.joint_aligned[0]);  // same block distribution
  EXPECT_DOUBLE_EQ(res.remap_energy.femtojoules(), 0.0);
  EXPECT_EQ(res.total_cycles, res.per_stage[0].makespan_cycles +
                                  res.per_stage[1].makespan_cycles);
}

/// Two-layer convolution; the joint is deliberately misaligned so a
/// remap module is inserted and priced.
TEST(Program, TwoLayerConvWithRemapJoint) {
  const std::int64_t n2 = 20;  // final outputs
  const std::int64_t k = 4;
  const std::int64_t n1 = n2 + k - 1;  // intermediate length
  Rng rng(9);
  std::vector<double> x(static_cast<std::size_t>(n1 + k - 1));
  std::vector<double> w1(static_cast<std::size_t>(k));
  std::vector<double> w2(static_cast<std::size_t>(k));
  for (auto& v : x) v = rng.next_double(-1, 1);
  for (auto& v : w1) v = rng.next_double(-1, 1);
  for (auto& v : w2) v = rng.next_double(-1, 1);

  const auto spec1 = algos::conv1d_spec(n1, k);
  const auto spec2 = algos::conv1d_spec(n2, k);
  const MachineConfig cfg = make_machine(8, 1);
  const Mapping m1 = default_mapping(spec1, cfg);
  const Mapping m2 = default_mapping(spec2, cfg);

  Joint joint;
  joint.adapt = [n1, k](const std::vector<std::vector<double>>& outs) {
    // Slice plane k-1 of the n1 x k partial-sum tensor -> y1, and carry
    // w2 through as the second input (injected below via captured copy).
    std::vector<double> y1(static_cast<std::size_t>(n1));
    for (std::int64_t i = 0; i < n1; ++i) {
      y1[static_cast<std::size_t>(i)] =
          outs[0][static_cast<std::size_t>(i * k + (k - 1))];
    }
    return std::vector<std::vector<double>>{std::move(y1)};
  };
  joint.domain = IndexDomain(n1);
  joint.produced = block_distribution(IndexDomain(n1), cfg.geom);
  joint.consumed = cyclic_distribution(IndexDomain(n1), cfg.geom);

  // Stage 2 consumes [y1, w2]: wrap the adapter to append w2.
  auto base = joint.adapt;
  joint.adapt = [base, w2](const std::vector<std::vector<double>>& outs) {
    auto v = base(outs);
    v.push_back(w2);
    return v;
  };

  const ProgramResult res = run_program(
      {{"conv1", &spec1, &m1}, {"conv2", &spec2, &m2}}, {joint}, cfg,
      {x, w1});

  const auto y1 = algos::conv1d_reference(x, w1);
  const auto y2 = algos::conv1d_reference(y1, w2);
  for (std::int64_t i = 0; i < n2; ++i) {
    ASSERT_NEAR(res.outputs[0][static_cast<std::size_t>(i * k + (k - 1))],
                y2[static_cast<std::size_t>(i)], 1e-9);
  }
  EXPECT_FALSE(res.joint_aligned[0]);
  EXPECT_GT(res.remap_energy.femtojoules(), 0.0);
  EXPECT_GT(res.remap_messages, 0u);
  EXPECT_GT(res.total_cycles, res.per_stage[0].makespan_cycles +
                                  res.per_stage[1].makespan_cycles);
}

TEST(Program, RejectsIllegalStage) {
  const auto spec = algos::stencil1d_spec(8, 2);
  const MachineConfig cfg = make_machine(2, 1);
  Mapping bad;
  bad.set_computed(1, [](const Point&) { return noc::Coord{0, 0}; },
                   [](const Point&) { return Cycle{0}; });  // all at t=0
  bad.set_input(0, InputHome::at({0, 0}));
  Joint none;
  EXPECT_THROW((void)run_program({{"bad", &spec, &bad}}, {}, cfg,
                                 {std::vector<double>(8, 1.0)}),
               SimulationError);
}

TEST(Program, ValidatesShape) {
  const auto spec = algos::stencil1d_spec(8, 2);
  const MachineConfig cfg = make_machine(2, 1);
  const Mapping m = default_mapping(spec, cfg);
  EXPECT_THROW((void)run_program({}, {}, cfg, {}), InvalidArgument);
  EXPECT_THROW((void)run_program({{"a", &spec, &m}, {"b", &spec, &m}}, {},
                                 cfg, {std::vector<double>(8, 1.0)}),
               InvalidArgument);
}

}  // namespace
}  // namespace harmony::fm
