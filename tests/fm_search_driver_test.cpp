// The parallel search driver's moving parts, unit-tested in isolation:
// auto-grain sizing (every lane gets work), the static partition helper,
// the batch slot decoder against its per-slot seed, the search_lanes
// coverage/lane-index contract on a real scheduler, and the pooled
// EvalContext's parity with a fresh one.  The end-to-end serial/parallel
// byte-parity lives in fm_search_parallel_test.cpp; these tests pin the
// pieces so a parity failure there localizes here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/enum_plan.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"

namespace harmony::fm {
namespace {

TEST(AutoGrain, EveryLaneGetsAGrainWheneverPossible) {
  // The documented guarantee: result >= 1 always, and whenever the
  // range has at least one slot per lane, the grain count covers every
  // lane — the degenerate sizing that used to leave lanes idle (one
  // covering grain for a small space) must not come back.
  const std::vector<std::uint64_t> ranges = {0,  1,  2,   3,   5,    7,
                                             8,  9,  15,  16,  17,   63,
                                             64, 65, 100, 257, 19683};
  for (const unsigned lanes : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    for (const std::uint64_t range : ranges) {
      const std::uint64_t grain = auto_grain_slots(range, lanes);
      SCOPED_TRACE("range=" + std::to_string(range) +
                   " lanes=" + std::to_string(lanes));
      ASSERT_GE(grain, 1u);
      if (range == 0) continue;
      const std::uint64_t num_grains = (range + grain - 1) / grain;
      const std::uint64_t l = lanes == 0 ? 1 : lanes;
      if (range >= l) {
        EXPECT_GE(num_grains, l) << "a lane would sit idle";
      }
      // And never an explosion: at most one grain per slot.
      EXPECT_LE(num_grains, range);
    }
  }
  // Large ranges settle at ~8 grains per lane so the tail ticket has
  // pieces to rebalance with.
  EXPECT_EQ(auto_grain_slots(64000, 8), 1000u);
  // The historical failure shape: range barely above the lane count
  // used to collapse into one covering grain.
  EXPECT_EQ(auto_grain_slots(9, 8), 1u);
  EXPECT_EQ(auto_grain_slots(1, 4), 1u);
}

TEST(StaticPartition, ContiguousBalancedCover) {
  for (const std::size_t parts : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u}) {
    for (const std::size_t total :
         {std::size_t{0}, std::size_t{1}, parts - 1, parts, parts + 1,
          std::size_t{100}, std::size_t{101}, 8 * parts + 3}) {
      SCOPED_TRACE("total=" + std::to_string(total) +
                   " parts=" + std::to_string(parts));
      std::size_t prev_hi = 0;
      std::size_t min_sz = total + 1, max_sz = 0;
      for (std::size_t idx = 0; idx < parts; ++idx) {
        const sched::PartRange r = sched::static_partition(total, parts, idx);
        EXPECT_EQ(r.lo, prev_hi) << "gap or overlap at part " << idx;
        EXPECT_LE(r.lo, r.hi);
        prev_hi = r.hi;
        const std::size_t sz = r.hi - r.lo;
        min_sz = std::min(min_sz, sz);
        max_sz = std::max(max_sz, sz);
      }
      EXPECT_EQ(prev_hi, total) << "partition does not cover the range";
      EXPECT_LE(max_sz - min_sz, 1u) << "partition is unbalanced";
    }
  }
  // parts == 0 is the documented empty range, not a division fault.
  const sched::PartRange none = sched::static_partition(10, 0, 0);
  EXPECT_EQ(none.lo, 0u);
  EXPECT_EQ(none.hi, 0u);
}

void expect_rows_equal(const AffineSoA& a, std::size_t ra, const AffineSoA& b,
                       std::size_t rb) {
  EXPECT_EQ(a.ti[ra], b.ti[rb]);
  EXPECT_EQ(a.tj[ra], b.tj[rb]);
  EXPECT_EQ(a.tk[ra], b.tk[rb]);
  EXPECT_EQ(a.t0[ra], b.t0[rb]);
  EXPECT_EQ(a.xi[ra], b.xi[rb]);
  EXPECT_EQ(a.xj[ra], b.xj[rb]);
  EXPECT_EQ(a.xk[ra], b.xk[rb]);
  EXPECT_EQ(a.yi[ra], b.yi[rb]);
  EXPECT_EQ(a.yj[ra], b.yj[rb]);
  EXPECT_EQ(a.yk[ra], b.yk[rb]);
}

TEST(DecodeSlots, OdometerMatchesPerSlotSeedOnEverySlot) {
  // The batch decoder seeds one div/mod chain and then increments a
  // mixed-radix odometer; a count-1 decode is pure seed.  The two paths
  // must agree on every coefficient of every slot — this is the pin
  // that makes "batch-decoded" invisible to the enumeration order.
  struct Case {
    std::string name;
    FunctionSpec spec;
    MachineConfig cfg;
  };
  algos::SwScores s;
  std::vector<Case> cases;
  cases.push_back({"editdist 6x6 (y pinned)", algos::editdist_spec(6, 6, s),
                   make_machine(6, 1)});
  cases.push_back({"matmul 4^3 (y searched)", algos::matmul_spec(4),
                   make_machine(4, 4)});
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const IndexDomain& dom = c.spec.domain(c.spec.computed_tensors()[0]);
    const EnumPlan plan =
        build_enum_plan(dom, c.cfg, SearchSpace{}, /*makespan_bound=*/1e18);
    ASSERT_GT(plan.total, 0u);

    AffineSoA batch;
    decode_slots(plan, 0, static_cast<std::size_t>(plan.total), batch);
    ASSERT_EQ(batch.size(), plan.total);

    AffineSoA single;
    for (std::uint64_t slot = 0; slot < plan.total; ++slot) {
      decode_slots(plan, slot, 1, single);
      SCOPED_TRACE("slot " + std::to_string(slot));
      expect_rows_equal(batch, static_cast<std::size_t>(slot), single, 0);
    }

    // A ragged mid-range batch (crossing time-block boundaries from a
    // nonzero digit state) agrees with the full decode row for row.
    const std::uint64_t lo = plan.total / 3 + 1;
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(plan.total - lo, 50));
    AffineSoA mid;
    decode_slots(plan, lo, n, mid);
    for (std::size_t r = 0; r < n; ++r) {
      SCOPED_TRACE("mid row " + std::to_string(r));
      expect_rows_equal(mid, r, batch, static_cast<std::size_t>(lo) + r);
    }
  }
}

TEST(EnumPlan, OverflowingRadixProductThrowsFM006) {
  // Regression: with six searched coefficient pools (rank-3 domain,
  // search_y on a multi-row machine) the mixed-radix product
  // |xi|·|xj|·|xk|·|yi|·|yj|·|yk| wraps uint64 once each pool exceeds
  // ~2^10.7 entries.  2048^6 = 2^66 ≡ 0 (mod 2^64): the old build
  // returned space_size == 0 and an "exhausted" enumeration of nothing.
  // Plan build must refuse with the FM006 diagnostic instead.
  const FunctionSpec spec = algos::matmul_spec(2);
  const IndexDomain& dom = spec.domain(spec.computed_tensors()[0]);
  const MachineConfig cfg = make_machine(2, 2);

  SearchSpace huge;
  huge.search_y = true;
  huge.space_coeffs.clear();
  for (std::int64_t c = 0; c < 2048; ++c) huge.space_coeffs.push_back(c);

  try {
    (void)build_enum_plan(dom, cfg, huge, /*makespan_bound=*/1e18);
    FAIL() << "overflowing radix product was accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("FM006"), std::string::npos)
        << "diagnostic should carry the FM006 rule id: " << e.what();
  }

  // Near-miss sanity: a large but representable product still builds.
  SearchSpace big;
  big.search_y = true;
  big.time_coeffs = {1};  // one time block, so only the radices multiply
  big.space_coeffs.clear();
  for (std::int64_t c = 0; c < 1024; ++c) big.space_coeffs.push_back(c);
  const EnumPlan plan = build_enum_plan(dom, cfg, big, 1e18);
  ASSERT_EQ(plan.blocks.size(), 1u);
  EXPECT_EQ(plan.space_size, std::uint64_t{1} << 60);  // 1024^6 = 2^60
  EXPECT_EQ(plan.total, std::uint64_t{1} << 60);
}

TEST(SearchLanes, SlotsCoveredExactlyOnceWithExplicitLaneIndex) {
  // The kernel on a real scheduler: a ragged grain over an offset range
  // must visit every slot exactly once, mark every grain processed, and
  // hand each grain body the lane index that owns the tally it writes.
  constexpr unsigned kLanes = 4;
  constexpr std::uint64_t kBegin = 5;
  constexpr std::uint64_t kEnd = 233;
  constexpr std::uint64_t kGrain = 7;  // does not divide 228
  const std::uint64_t num_grains = (kEnd - kBegin + kGrain - 1) / kGrain;

  sched::Scheduler pool(kLanes);
  std::vector<SearchTally> tallies(kLanes);
  std::vector<std::uint8_t> processed(num_grains, 0);
  std::vector<std::atomic<std::uint32_t>> hits(kEnd);
  std::atomic<bool> lane_matches_tally{true};

  sched::RealCtx ctx;
  pool.run([&] {
    search_lanes(ctx, kLanes, kBegin, kEnd, kGrain, /*cancel=*/{},
                 tallies.data(), processed.data(),
                 [&](std::uint64_t lo, std::uint64_t hi, unsigned lane,
                     SearchTally& tally) {
                   if (&tally != tallies.data() + lane) {
                     lane_matches_tally.store(false);
                   }
                   tally.enumerated += hi - lo;
                   for (std::uint64_t slot = lo; slot < hi; ++slot) {
                     hits[slot].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
  });

  EXPECT_TRUE(lane_matches_tally.load());
  for (std::uint64_t g = 0; g < num_grains; ++g) {
    EXPECT_EQ(processed[g], 1u) << "grain " << g;
  }
  for (std::uint64_t slot = 0; slot < kEnd; ++slot) {
    EXPECT_EQ(hits[slot].load(), slot < kBegin ? 0u : 1u)
        << "slot " << slot;
  }
  std::uint64_t enumerated = 0;
  for (const SearchTally& t : tallies) enumerated += t.enumerated;
  EXPECT_EQ(enumerated, kEnd - kBegin);
}

TEST(SearchLanes, HugeGrainMatchesSerialInsteadOfSkippingTheSpace) {
  // Regression: a near-2^64 grain (legal, distinct from the kAutoGrain
  // sentinel) used to wrap the naive ceil-divide in num_grains to 0, so
  // the parallel backend evaluated nothing yet reported
  // next_offset == total with exhausted=true — a silent full-space skip
  // that broke serial parity and the resume covering invariant.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(8, 8, s);
  const MachineConfig cfg = make_machine(8, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in,
                    InputHome::distributed(
                        block_distribution(spec.domain(in), cfg.geom).place));
  }
  const SearchResult serial = search_affine(spec, cfg, proto, {});
  ASSERT_TRUE(serial.found);
  ASSERT_TRUE(serial.exhausted);
  ASSERT_GT(serial.enumerated, 0u);

  sched::Scheduler pool(4);
  SearchOptions par;
  par.scheduler = &pool;
  par.num_workers = 4;
  par.grain = ~std::uint64_t{0} - 1;  // huge but NOT the sentinel
  const SearchResult r = search_affine(spec, cfg, proto, par);
  EXPECT_GE(r.workers_used, 1u) << "grain wrap clamped lanes to zero";
  EXPECT_EQ(r.enumerated, serial.enumerated);
  EXPECT_EQ(r.found, serial.found);
  EXPECT_EQ(r.exhausted, serial.exhausted);
  EXPECT_EQ(r.next_offset, serial.next_offset);
  ASSERT_EQ(r.top.size(), serial.top.size());
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    EXPECT_EQ(r.top[i].slot, serial.top[i].slot);
    EXPECT_EQ(r.top[i].merit, serial.top[i].merit);
  }
}

TEST(SearchLanes, CancelOnTicketedTailKeepsNextOffsetCovering) {
  // When cancel fires while a worker holds a tail ticket, the driver's
  // next_offset formula (first unprocessed grain's first slot) must not
  // step past any unevaluated slot: every slot below the computed
  // next_offset has to have been handed to eval_range.  Sweeping the
  // cancel trigger over eval-start counts lands the cut inside head
  // grains, on held tail tickets, and after the end.
  constexpr unsigned kLanes = 4;
  constexpr std::uint64_t kBegin = 5;
  constexpr std::uint64_t kEnd = 233;
  constexpr std::uint64_t kGrain = 7;  // does not divide 228
  const std::uint64_t num_grains = (kEnd - kBegin + kGrain - 1) / kGrain;

  sched::Scheduler pool(kLanes);
  for (std::uint64_t after = 0; after <= num_grains + 2; ++after) {
    SCOPED_TRACE("cancel after " + std::to_string(after) + " grain starts");
    std::vector<SearchTally> tallies(kLanes);
    std::vector<std::uint8_t> processed(num_grains, 0);
    std::vector<std::atomic<std::uint8_t>> hit(kEnd);
    for (auto& h : hit) h.store(0);
    std::atomic<std::uint64_t> evals{0};
    const std::function<bool()> cancel = [&] {
      return evals.load(std::memory_order_relaxed) >= after;
    };
    sched::RealCtx ctx;
    pool.run([&] {
      search_lanes(ctx, kLanes, kBegin, kEnd, kGrain, cancel,
                   tallies.data(), processed.data(),
                   [&](std::uint64_t lo, std::uint64_t hi, unsigned,
                       SearchTally& tally) {
                     evals.fetch_add(1, std::memory_order_relaxed);
                     tally.enumerated += hi - lo;
                     for (std::uint64_t slot = lo; slot < hi; ++slot) {
                       hit[slot].store(1, std::memory_order_relaxed);
                     }
                   });
    });
    // The driver's next_offset formula over processed[].
    std::uint64_t first_unprocessed = num_grains;
    for (std::uint64_t g = 0; g < num_grains; ++g) {
      if (processed[g] == 0) {
        first_unprocessed = g;
        break;
      }
    }
    const std::uint64_t next =
        first_unprocessed == num_grains
            ? kEnd
            : std::min(kEnd, kBegin + first_unprocessed * kGrain);
    for (std::uint64_t slot = kBegin; slot < next; ++slot) {
      ASSERT_EQ(hit[slot].load(), 1u)
          << "next_offset " << next << " stepped past unevaluated slot "
          << slot;
    }
    // processed[g] == 1 implies every slot of grain g was evaluated.
    for (std::uint64_t g = 0; g < num_grains; ++g) {
      if (!processed[g]) continue;
      const std::uint64_t lo = kBegin + g * kGrain;
      const std::uint64_t hi = std::min(kEnd, lo + kGrain);
      for (std::uint64_t slot = lo; slot < hi; ++slot) {
        ASSERT_EQ(hit[slot].load(), 1u) << "grain " << g << " slot " << slot;
      }
    }
  }
}

TEST(EvalContextPool, PooledLaneMatchesFreshContext) {
  // reserve_scratch() and pooling are allocation accelerators only:
  // a pooled, pre-reserved context must produce bit-identical verify
  // and cost results to a freshly constructed one on the same mapping.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(6, 6, s);
  const MachineConfig cfg = make_machine(6, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in,
                    InputHome::distributed(
                        block_distribution(spec.domain(in), cfg.geom).place));
  }
  const SearchResult found = search_affine(spec, cfg, proto, {});
  ASSERT_TRUE(found.found);
  const AffineMap map = found.best.map;

  const auto cs = compile_spec(spec, cfg, proto);
  EvalContext fresh(*cs);
  EvalContextPool pool(*cs, 3);
  ASSERT_EQ(pool.lanes(), 3u);

  for (unsigned lane = 0; lane < pool.lanes(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    EvalContext& pooled = pool.lane(lane);
    const LegalityReport lr_fresh = verify(*cs, map, fresh);
    const LegalityReport lr_pool = verify(*cs, map, pooled);
    EXPECT_EQ(lr_pool.ok, lr_fresh.ok);
    EXPECT_EQ(lr_pool.diagnostics.size(), lr_fresh.diagnostics.size());

    const CostReport cost_fresh = evaluate_cost(*cs, map, fresh);
    const CostReport cost_pool = evaluate_cost(*cs, map, pooled);
    EXPECT_EQ(cost_pool.makespan_cycles, cost_fresh.makespan_cycles);
    EXPECT_EQ(cost_pool.compute_energy, cost_fresh.compute_energy);
    EXPECT_EQ(cost_pool.onchip_movement_energy,
              cost_fresh.onchip_movement_energy);
    EXPECT_EQ(cost_pool.local_access_energy, cost_fresh.local_access_energy);
    EXPECT_EQ(cost_pool.dram_energy, cost_fresh.dram_energy);
    EXPECT_EQ(cost_pool.messages, cost_fresh.messages);
    EXPECT_EQ(cost_pool.bit_hops, cost_fresh.bit_hops);
    EXPECT_EQ(cost_pool.total_ops, cost_fresh.total_ops);
  }
}

}  // namespace
}  // namespace harmony::fm
