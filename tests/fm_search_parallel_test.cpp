// Parallel mapping-search backend: byte-identical parity with the
// serial enumeration, cancel/resume edge cases on both backends, the
// documented cut-plus-resume covering invariant, and worker caps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"

namespace harmony::fm {
namespace {

struct Fixture {
  std::string name;
  FunctionSpec spec;
  MachineConfig cfg;
  Mapping proto;
};

Fixture make_fixture(std::string name, FunctionSpec spec, int cols,
                     int rows) {
  Fixture f{std::move(name), std::move(spec), make_machine(cols, rows),
            Mapping{}};
  for (TensorId in : f.spec.input_tensors()) {
    f.proto.set_input(
        in, InputHome::distributed(
                block_distribution(f.spec.domain(in), f.cfg.geom).place));
  }
  return f;
}

std::vector<Fixture> fixtures() {
  std::vector<Fixture> out;
  {
    algos::SwScores s;
    out.push_back(
        make_fixture("editdist 8x8", algos::editdist_spec(8, 8, s), 8, 1));
  }
  out.push_back(
      make_fixture("stencil1d n=12 T=8", algos::stencil1d_spec(12, 8), 12, 1));
  out.push_back(make_fixture("matmul 6^3", algos::matmul_spec(6), 6, 6));
  return out;
}

/// Structural equality down to the bit-exact merit and the winning
/// enumeration slot — the parallel backend's headline guarantee.
void expect_identical(const SearchResult& serial, const SearchResult& par,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(par.found, serial.found);
  EXPECT_EQ(par.enumerated, serial.enumerated);
  EXPECT_EQ(par.quick_rejected, serial.quick_rejected);
  EXPECT_EQ(par.verify_rejected, serial.verify_rejected);
  EXPECT_EQ(par.legal, serial.legal);
  EXPECT_EQ(par.exhausted, serial.exhausted);
  EXPECT_EQ(par.next_offset, serial.next_offset);
  if (serial.found) {
    EXPECT_EQ(par.best.slot, serial.best.slot);
    EXPECT_EQ(par.best.merit, serial.best.merit);  // bit-exact
    EXPECT_EQ(par.best.cost.makespan_cycles, serial.best.cost.makespan_cycles);
  }
  ASSERT_EQ(par.top.size(), serial.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(par.top[i].slot, serial.top[i].slot) << "top[" << i << "]";
    EXPECT_EQ(par.top[i].merit, serial.top[i].merit) << "top[" << i << "]";
  }
  ASSERT_EQ(par.all_legal.size(), serial.all_legal.size());
  for (std::size_t i = 0; i < serial.all_legal.size(); ++i) {
    EXPECT_EQ(par.all_legal[i].slot, serial.all_legal[i].slot)
        << "all_legal[" << i << "]";
    EXPECT_EQ(par.all_legal[i].merit, serial.all_legal[i].merit)
        << "all_legal[" << i << "]";
  }
}

TEST(ParallelSearch, ByteIdenticalTopKAcrossFixturesAndFoMs) {
  // The headline parity sweep: every fixture x figure-of-merit x worker
  // count in {1, 2, 4, 8} reproduces the serial result bit-for-bit.
  // Lane count changes the static partition and the tail ticket
  // interleaving, so sweeping it exercises every assignment shape the
  // driver can produce.
  sched::Scheduler pool(8);
  for (const Fixture& f : fixtures()) {
    for (auto fom : {FigureOfMerit::kTime, FigureOfMerit::kEnergyDelay}) {
      SearchOptions opts;
      opts.fom = fom;
      opts.keep_all_legal = true;
      const SearchResult serial =
          search_affine(f.spec, f.cfg, f.proto, opts);
      ASSERT_TRUE(serial.exhausted);

      for (const unsigned workers : {1u, 2u, 4u, 8u}) {
        SearchOptions par = opts;
        par.scheduler = &pool;
        par.num_workers = workers;
        const SearchResult parallel =
            search_affine(f.spec, f.cfg, f.proto, par);
        EXPECT_GE(parallel.workers_used, 1u);
        EXPECT_LE(parallel.workers_used, workers);
        expect_identical(serial, parallel,
                         f.name + " fom=" +
                             std::to_string(static_cast<int>(fom)) +
                             " workers=" + std::to_string(workers));
      }
    }
  }
}

TEST(ParallelSearch, SingleSlotGrainsMatchSerial) {
  // grain = 1 maximizes grain-boundary traffic (every slot is its own
  // unit of distribution and cancel polling) — the adversarial case for
  // the merge.
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 6x6", algos::editdist_spec(6, 6, s), 6, 1);
  SearchOptions opts;
  opts.keep_all_legal = true;
  const SearchResult serial = search_affine(f.spec, f.cfg, f.proto, opts);

  SearchOptions par = opts;
  par.scheduler = &pool;
  par.grain = 1;
  const SearchResult parallel = search_affine(f.spec, f.cfg, f.proto, par);
  expect_identical(serial, parallel, "grain=1");
}

TEST(ParallelSearch, CancelOnFirstCandidateBothBackends) {
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 6x6", algos::editdist_spec(6, 6, s), 6, 1);

  for (const std::uint64_t resume : {std::uint64_t{0}, std::uint64_t{7}}) {
    for (const bool use_pool : {false, true}) {
      SCOPED_TRACE("resume=" + std::to_string(resume) +
                   " parallel=" + std::to_string(use_pool));
      SearchOptions opts;
      opts.cancel = [] { return true; };  // fires before any work
      opts.resume_from = resume;
      if (use_pool) opts.scheduler = &pool;
      const SearchResult r = search_affine(f.spec, f.cfg, f.proto, opts);
      EXPECT_FALSE(r.found);
      EXPECT_FALSE(r.exhausted);
      EXPECT_EQ(r.enumerated, 0u);
      // Nothing was processed, so the resume point is exactly where
      // this call started.
      EXPECT_EQ(r.next_offset, resume);
    }
  }
}

TEST(ParallelSearch, ResumePastEndBothBackends) {
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 6x6", algos::editdist_spec(6, 6, s), 6, 1);
  const SearchResult full = search_affine(f.spec, f.cfg, f.proto, {});
  ASSERT_TRUE(full.exhausted);
  const std::uint64_t total = full.next_offset;

  for (const bool use_pool : {false, true}) {
    SCOPED_TRACE("parallel=" + std::to_string(use_pool));
    SearchOptions opts;
    opts.resume_from = total + 100;  // past the end of the enumeration
    if (use_pool) opts.scheduler = &pool;
    const SearchResult r = search_affine(f.spec, f.cfg, f.proto, opts);
    EXPECT_TRUE(r.exhausted);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.enumerated, 0u);
    // next_offset is clamped to the enumeration size, so feeding it
    // back converges instead of chasing a phantom offset.
    EXPECT_EQ(r.next_offset, total);
  }
}

TEST(ParallelSearch, CutPlusResumeTopUnionCoversSerialResult) {
  // The documented invariant: (first run).top ∪ (resume_from = r).top
  // covers every candidate of one uncut run — now asserted against both
  // backends.  Rank argument: a global top-k candidate evaluated in
  // either call precedes at most k-1 candidates there too, so the
  // bounded per-call heap cannot have dropped it.
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 8x8", algos::editdist_spec(8, 8, s), 8, 1);

  SearchOptions base;
  base.top_k = 4;
  const SearchResult full = search_affine(f.spec, f.cfg, f.proto, base);
  ASSERT_TRUE(full.exhausted);
  ASSERT_FALSE(full.top.empty());

  for (const bool use_pool : {false, true}) {
    SCOPED_TRACE(use_pool ? "parallel" : "serial");
    SearchOptions cut = base;
    if (use_pool) {
      cut.scheduler = &pool;
      cut.grain = 8;  // several grains -> the cut lands mid-space
    }
    // Cancel after a handful of polls.  The serial backend polls per
    // slot (cut lands a few slots in); the parallel backend polls per
    // grain (the first lane claims survive, later grains are refused) —
    // both leave a genuinely partial first run.
    std::atomic<std::uint64_t> polls{0};
    cut.cancel = [&polls] {
      return polls.fetch_add(1, std::memory_order_relaxed) > 3;
    };
    const SearchResult first = search_affine(f.spec, f.cfg, f.proto, cut);
    ASSERT_FALSE(first.exhausted);
    ASSERT_LT(first.next_offset, full.next_offset);

    SearchOptions rest = base;
    if (use_pool) rest.scheduler = &pool;
    rest.resume_from = first.next_offset;
    const SearchResult second = search_affine(f.spec, f.cfg, f.proto, rest);
    ASSERT_TRUE(second.exhausted);
    EXPECT_EQ(second.next_offset, full.next_offset);

    for (const Candidate& want : full.top) {
      bool covered = false;
      for (const Candidate& got : first.top) {
        covered |= got.slot == want.slot && got.merit == want.merit;
      }
      for (const Candidate& got : second.top) {
        covered |= got.slot == want.slot && got.merit == want.merit;
      }
      EXPECT_TRUE(covered) << "slot " << want.slot << " missing from the "
                           << "cut+resume union";
    }

    // And the union's winner is the uncut winner.
    const double best = std::min(
        first.found ? first.best.merit
                    : std::numeric_limits<double>::infinity(),
        second.found ? second.best.merit
                     : std::numeric_limits<double>::infinity());
    EXPECT_EQ(best, full.best.merit);
  }
}

TEST(ParallelSearch, NonDividingGrainCutPlusResumeConverges) {
  // grain = 7 does not divide the editdist slot space, so the last grain
  // is short and every grain boundary is a "ragged" resume point.  The
  // covering invariant and the next_offset clamp must both hold: a cut
  // never reports a resume point past the enumeration size, and the
  // union of the cut and the resumed run reproduces the uncut top-k.
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 8x8", algos::editdist_spec(8, 8, s), 8, 1);

  SearchOptions base;
  base.top_k = 4;
  const SearchResult full = search_affine(f.spec, f.cfg, f.proto, base);
  ASSERT_TRUE(full.exhausted);
  const std::uint64_t total = full.next_offset;
  ASSERT_NE(total % 7, 0u) << "fixture no longer exercises a ragged tail";

  SearchOptions cut = base;
  cut.scheduler = &pool;
  cut.grain = 7;
  std::atomic<std::uint64_t> polls{0};
  cut.cancel = [&polls] {
    return polls.fetch_add(1, std::memory_order_relaxed) > 3;
  };
  const SearchResult first = search_affine(f.spec, f.cfg, f.proto, cut);
  ASSERT_FALSE(first.exhausted);
  EXPECT_LE(first.next_offset, total);  // the clamp, at a ragged boundary
  ASSERT_LT(first.next_offset, total);

  SearchOptions rest = base;
  rest.scheduler = &pool;
  rest.grain = 7;
  rest.resume_from = first.next_offset;
  const SearchResult second = search_affine(f.spec, f.cfg, f.proto, rest);
  ASSERT_TRUE(second.exhausted);
  // Resuming a ragged cut still lands next_offset exactly on the
  // enumeration size — clamped, never begin + grains * grain.
  EXPECT_EQ(second.next_offset, total);

  for (const Candidate& want : full.top) {
    bool covered = false;
    for (const Candidate& got : first.top) {
      covered |= got.slot == want.slot && got.merit == want.merit;
    }
    for (const Candidate& got : second.top) {
      covered |= got.slot == want.slot && got.merit == want.merit;
    }
    EXPECT_TRUE(covered) << "slot " << want.slot
                         << " missing from the ragged cut+resume union";
  }
}

TEST(ParallelSearch, SingleSlotGrainCancelLatencyIsBounded) {
  // Cancellation is polled once per grain, so grain = 1 gives the
  // tightest latency the backend offers: after the poll counter trips,
  // no lane starts another slot.  The cancel below returns false exactly
  // 4 times, so at most 4 slots are evaluated in total across all lanes
  // — and the resume point stays within those first few slots (lane 0
  // owns the head of the static partition, so first-unprocessed can
  // only be smaller).
  sched::Scheduler pool(4);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 6x6", algos::editdist_spec(6, 6, s), 6, 1);

  SearchOptions opts;
  opts.scheduler = &pool;
  opts.grain = 1;
  std::atomic<std::uint64_t> polls{0};
  opts.cancel = [&polls] {
    return polls.fetch_add(1, std::memory_order_relaxed) >= 4;
  };
  const SearchResult r = search_affine(f.spec, f.cfg, f.proto, opts);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.enumerated, 4u);
  EXPECT_LE(r.next_offset, 4u);
}

TEST(ParallelSearch, WorkerCapAndRequestedLanesAreRespected) {
  sched::Scheduler pool(8);
  algos::SwScores s;
  const Fixture f =
      make_fixture("editdist 6x6", algos::editdist_spec(6, 6, s), 6, 1);

  SearchOptions opts;
  opts.scheduler = &pool;
  opts.num_workers = 3;
  const SearchResult r = search_affine(f.spec, f.cfg, f.proto, opts);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GE(r.workers_used, 1u);
  EXPECT_LE(r.workers_used, 3u);

  // Serial path reports exactly one lane.
  const SearchResult serial = search_affine(f.spec, f.cfg, f.proto, {});
  EXPECT_EQ(serial.workers_used, 1u);
}

}  // namespace
}  // namespace harmony::fm
