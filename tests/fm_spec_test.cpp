// Tests for F&M index domains and function specs (src/fm: domain, spec).
#include <gtest/gtest.h>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/specs.hpp"
#include "fm/domain.hpp"
#include "fm/legality.hpp"
#include "fm/machine.hpp"
#include "fm/spec.hpp"
#include "support/rng.hpp"

namespace harmony::fm {
namespace {

TEST(Domain, LinearizeRoundTrip) {
  const IndexDomain d(3, 4, 5);
  EXPECT_EQ(d.size(), 60);
  for (std::int64_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.linearize(d.delinearize(i)), i);
  }
}

TEST(Domain, ContainsAndRank) {
  const IndexDomain d1(7);
  EXPECT_EQ(d1.rank(), 1);
  EXPECT_TRUE(d1.contains(Point{6}));
  EXPECT_FALSE(d1.contains(Point{7}));
  const IndexDomain d2(2, 3);
  EXPECT_EQ(d2.rank(), 2);
  EXPECT_FALSE(d2.contains(Point{0, 3}));
  EXPECT_FALSE(d2.contains(Point{0, 0, 1}));  // k out of range for rank 2
}

TEST(Domain, ForEachVisitsRowMajorExactlyOnce) {
  const IndexDomain d(2, 3);
  std::vector<std::int64_t> order;
  d.for_each([&](const Point& p) { order.push_back(d.linearize(p)); });
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<std::int64_t>(i));
  }
}

TEST(Domain, RejectsEmptyExtents) {
  EXPECT_THROW(IndexDomain(0), InvalidArgument);
  EXPECT_THROW(IndexDomain(2, 0), InvalidArgument);
}

TEST(Spec, TensorBookkeeping) {
  FunctionSpec spec;
  const TensorId a = spec.add_input("a", IndexDomain(4), 16);
  const TensorId b = spec.add_computed(
      "b", IndexDomain(4),
      [a](const Point& p) {
        return std::vector<ValueRef>{{a, p}};
      },
      [](const Point&, const std::vector<double>& v) { return 2.0 * v[0]; });
  spec.mark_output(b);
  EXPECT_EQ(spec.num_tensors(), 2);
  EXPECT_TRUE(spec.is_input(a));
  EXPECT_FALSE(spec.is_input(b));
  EXPECT_TRUE(spec.is_output(b));
  EXPECT_EQ(spec.bits(a), 16u);
  EXPECT_EQ(spec.total_values(), 8);
  EXPECT_EQ(spec.value_index({b, Point{2}}), 6);
  EXPECT_EQ(spec.input_tensors().size(), 1u);
  EXPECT_EQ(spec.computed_tensors().size(), 1u);
}

TEST(Spec, ReferenceEvaluationSimpleChain) {
  FunctionSpec spec;
  const TensorId x = spec.add_input("x", IndexDomain(5));
  const TensorId s = spec.add_computed(
      "s", IndexDomain(5),
      [x](const Point& p) {
        std::vector<ValueRef> deps{{x, p}};
        if (p.i > 0) deps.push_back({x + 1, Point{p.i - 1}});
        return deps;
      },
      [](const Point& p, const std::vector<double>& v) {
        return p.i > 0 ? v[0] + v[1] : v[0];  // prefix sum recurrence
      });
  spec.mark_output(s);
  const auto out = spec.evaluate_reference({{1, 2, 3, 4, 5}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::vector<double>{1, 3, 6, 10, 15}));
}

TEST(Spec, CyclicDependenceDetected) {
  FunctionSpec spec;
  const TensorId t = spec.add_computed(
      "loop", IndexDomain(2),
      [](const Point& p) {
        // 0 depends on 1 and 1 depends on 0.
        return std::vector<ValueRef>{{0, Point{1 - p.i}}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0]; });
  spec.mark_output(t);
  EXPECT_THROW(spec.evaluate_reference({}), SimulationError);
}

TEST(Spec, InputArityValidated) {
  FunctionSpec spec;
  spec.add_input("x", IndexDomain(4));
  const TensorId y = spec.add_computed(
      "y", IndexDomain(4),
      [](const Point& p) {
        return std::vector<ValueRef>{{0, p}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0]; });
  spec.mark_output(y);
  EXPECT_THROW(spec.evaluate_reference({}), InvalidArgument);
  EXPECT_THROW(spec.evaluate_reference({{1, 2, 3}}), InvalidArgument);
  EXPECT_THROW(spec.evaluate_reference({{1, 2, 3, 4}, {5}}),
               InvalidArgument);
}

TEST(Spec, TotalOpsAccumulates) {
  FunctionSpec spec;
  const TensorId x = spec.add_input("x", IndexDomain(8));
  spec.add_computed(
      "y", IndexDomain(8),
      [x](const Point& p) {
        return std::vector<ValueRef>{{x, p}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0]; },
      OpCost{.ops = 3.0, .bits = 32});
  EXPECT_DOUBLE_EQ(spec.total_ops(), 24.0);
}

// --- the algorithm specs against their host references -----------------

TEST(EditDistSpec, MatchesSerialSmithWaterman) {
  const std::string r = "GATTACATTGAC";
  const std::string q = "GCATGCATAG";
  algos::SwScores s;
  const auto expect = algos::smith_waterman_serial(r, q, s);

  const auto spec = algos::editdist_spec(
      static_cast<std::int64_t>(r.size()),
      static_cast<std::int64_t>(q.size()), s);
  const auto out = spec.evaluate_reference(
      {algos::encode_string(r), algos::encode_string(q)});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[0][i], expect[i]) << "cell " << i;
  }
}

TEST(EditDistSpec, AntidiagonalOrderGivesSameMatrix) {
  const std::string r = "ACCGGTATT";
  const std::string q = "AGGCCTTAA";
  algos::SwScores s;
  EXPECT_EQ(algos::smith_waterman_serial(r, q, s),
            algos::smith_waterman_antidiagonal(r, q, s));
}

TEST(MatmulSpec, SliceMatchesSerialProduct) {
  const std::int64_t n = 6;
  Rng rng(3);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);

  const auto spec = algos::matmul_spec(n);
  const auto out = spec.evaluate_reference({a, b});
  ASSERT_EQ(out.size(), 1u);
  const auto c_ref = algos::matmul_serial(a, b, static_cast<std::size_t>(n));
  // out[0] is C(i,j,k) rank-3; read the k = n-1 slice.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double got = out[0][static_cast<std::size_t>(
          (i * n + j) * n + (n - 1))];
      ASSERT_NEAR(got, c_ref[static_cast<std::size_t>(i * n + j)], 1e-9);
    }
  }
}

TEST(StencilSpec, MatchesHostReference) {
  const std::int64_t n = 17;
  const std::int64_t steps = 6;
  Rng rng(8);
  std::vector<double> u0(static_cast<std::size_t>(n));
  for (auto& v : u0) v = rng.next_double(0, 10);
  const auto spec = algos::stencil1d_spec(n, steps);
  const auto out = spec.evaluate_reference({u0});
  const auto expect = algos::stencil1d_reference(u0, steps);
  // Row `steps` of the (steps+1) x n output.
  for (std::int64_t j = 0; j < n; ++j) {
    ASSERT_NEAR(out[0][static_cast<std::size_t>(steps * n + j)],
                expect[static_cast<std::size_t>(j)], 1e-9);
  }
}

TEST(Stencil2dSpec, MatchesHostReference) {
  const std::int64_t rows = 7;
  const std::int64_t cols = 9;
  const std::int64_t steps = 4;
  Rng rng(44);
  std::vector<double> u0(static_cast<std::size_t>(rows * cols));
  for (auto& v : u0) v = rng.next_double(-2, 2);
  const auto spec = algos::stencil2d_spec(rows, cols, steps);
  const auto out = spec.evaluate_reference({u0});
  const auto expect = algos::stencil2d_reference(u0, rows, cols, steps);
  for (std::int64_t i = 0; i < rows * cols; ++i) {
    ASSERT_NEAR(out[0][static_cast<std::size_t>(steps * rows * cols + i)],
                expect[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Stencil2dSpec, SystolicTilePlacementExecutes) {
  // The natural 2-D mapping: u(t,i,j) on PE (j, i), t stretched so the
  // one-hop neighbour exchanges fit (time = t * 2 handles the 1-cycle
  // transit plus the op slot).
  const std::int64_t rows = 6;
  const std::int64_t cols = 6;
  const std::int64_t steps = 5;
  algos::Stencil2dSpecIds ids;
  const auto spec = algos::stencil2d_spec(rows, cols, steps, &ids);
  const fm::MachineConfig cfg = fm::make_machine(static_cast<int>(cols),
                                                 static_cast<int>(rows));
  fm::Mapping m;
  const fm::Cycle offset = static_cast<fm::Cycle>(rows + cols);
  m.set_computed(
      ids.u,
      [](const fm::Point& p) {
        return noc::Coord{static_cast<int>(p.k), static_cast<int>(p.j)};
      },
      [offset](const fm::Point& p) { return offset + 2 * p.i; });
  m.set_input(ids.input,
              fm::InputHome::distributed([](const fm::Point& p) {
                return noc::Coord{static_cast<int>(p.j),
                                  static_cast<int>(p.i)};
              }));
  const fm::LegalityReport rep = verify(spec, m, cfg);
  ASSERT_TRUE(rep.ok) << rep.first_message();

  Rng rng(13);
  std::vector<double> u0(static_cast<std::size_t>(rows * cols));
  for (auto& v : u0) v = rng.next_double(0, 1);
  const auto res = fm::GridMachine(cfg).run(spec, m, {u0});
  const auto expect = algos::stencil2d_reference(u0, rows, cols, steps);
  for (std::int64_t i = 0; i < rows * cols; ++i) {
    ASSERT_NEAR(res.outputs[0][static_cast<std::size_t>(
                    steps * rows * cols + i)],
                expect[static_cast<std::size_t>(i)], 1e-9);
  }
  // Fully parallel in space: makespan ~ 2*steps + offset, not
  // steps*rows*cols.
  EXPECT_LE(res.makespan_cycles, 2 * steps + offset + 1);
}

TEST(ConvSpec, MatchesHostReference) {
  const std::int64_t n_out = 20;
  const std::int64_t k = 5;
  Rng rng(21);
  std::vector<double> x(static_cast<std::size_t>(n_out + k - 1));
  std::vector<double> w(static_cast<std::size_t>(k));
  for (auto& v : x) v = rng.next_double(-1, 1);
  for (auto& v : w) v = rng.next_double(-1, 1);
  const auto spec = algos::conv1d_spec(n_out, k);
  const auto out = spec.evaluate_reference({x, w});
  const auto expect = algos::conv1d_reference(x, w);
  for (std::int64_t i = 0; i < n_out; ++i) {
    ASSERT_NEAR(out[0][static_cast<std::size_t>(i * k + (k - 1))],
                expect[static_cast<std::size_t>(i)], 1e-9);
  }
}

}  // namespace
}  // namespace harmony::fm
