// Stochastic mapping search (fm/strategy): TableMap oracle parity,
// delta-evaluation exactness against full re-evaluation after arbitrary
// apply/undo move sequences, seed-schedule legality, worker-count
// byte-identity of the anneal and beam drivers, FM005 option
// validation, and cancel semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/compiled.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "fm/strategy/delta.hpp"
#include "fm/strategy/strategy.hpp"
#include "fm/strategy/table_map.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

namespace harmony::fm {
namespace {

/// Bit-for-bit CostReport equality — the contract between two delta
/// evaluators over identical counters, and between the compiled
/// TableMap oracle and the legacy oracle on the lowered Mapping.
void expect_cost_identical(const CostReport& a, const CostReport& b) {
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.makespan.picoseconds(), b.makespan.picoseconds());
  EXPECT_EQ(a.compute_energy.femtojoules(), b.compute_energy.femtojoules());
  EXPECT_EQ(a.onchip_movement_energy.femtojoules(),
            b.onchip_movement_energy.femtojoules());
  EXPECT_EQ(a.local_access_energy.femtojoules(),
            b.local_access_energy.femtojoules());
  EXPECT_EQ(a.dram_energy.femtojoules(), b.dram_energy.femtojoules());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bit_hops, b.bit_hops);
  EXPECT_EQ(a.total_ops, b.total_ops);
}

/// Integer fields exact, energy doubles to addition-reassociation
/// tolerance — the delta evaluator's contract against evaluate_cost.
void expect_cost_matches_oracle(const CostReport& delta,
                                const CostReport& oracle) {
  EXPECT_EQ(delta.makespan_cycles, oracle.makespan_cycles);
  EXPECT_EQ(delta.messages, oracle.messages);
  EXPECT_EQ(delta.bit_hops, oracle.bit_hops);
  EXPECT_EQ(delta.total_ops, oracle.total_ops);
  EXPECT_DOUBLE_EQ(delta.makespan.picoseconds(),
                   oracle.makespan.picoseconds());
  EXPECT_EQ(delta.compute_energy.femtojoules(),
            oracle.compute_energy.femtojoules());
  const auto near = [](double x, double y) {
    EXPECT_NEAR(x, y, 1e-9 * std::max(1.0, std::abs(y)));
  };
  near(delta.onchip_movement_energy.femtojoules(),
       oracle.onchip_movement_energy.femtojoules());
  near(delta.local_access_energy.femtojoules(),
       oracle.local_access_energy.femtojoules());
  near(delta.dram_energy.femtojoules(), oracle.dram_energy.femtojoules());
}

/// The irregular-DAG fixture: hash-derived fan-in no affine schedule can
/// express, inputs block-distributed so kShiftHome has targets.
struct Fixture {
  FunctionSpec spec;
  MachineConfig cfg;
  Mapping proto;
  std::shared_ptr<const CompiledSpec> cs;
  std::shared_ptr<const StrategySpec> ss;
};

Fixture make_fixture(std::int64_t n, bool output, int cols = 2,
                     int rows = 2) {
  Fixture f{algos::irregular_dag_spec(n, 3, 0xD46u, output),
            make_machine(cols, rows), Mapping{}, nullptr, nullptr};
  for (TensorId in : f.spec.input_tensors()) {
    f.proto.set_input(in, InputHome::distributed(
                              block_distribution(f.spec.domain(in),
                                                 f.cfg.geom).place));
  }
  f.cs = compile_spec(f.spec, f.cfg, f.proto);
  f.ss = build_strategy_spec(f.cs);
  return f;
}

/// A random in-bounds move drawn from the full move set.
Move random_move(const StrategySpec& ss, Rng& rng) {
  const std::int64_t n = ss.cs->num_points;
  const auto P = static_cast<std::uint64_t>(ss.cs->num_pes);
  Move m;
  const std::uint64_t r = rng.next_below(3);
  if (r == 2 && !ss.pe_homed.empty()) {
    m.kind = MoveKind::kShiftHome;
    m.a = ss.pe_homed[rng.next_below(ss.pe_homed.size())];
    m.pe = static_cast<std::int32_t>(rng.next_below(P));
  } else if (r == 1 && n >= 2) {
    m.kind = MoveKind::kSwapOps;
    m.a = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    m.b = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  } else {
    m.kind = MoveKind::kReplaceOp;
    m.a = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    m.pe = static_cast<std::int32_t>(rng.next_below(P));
    m.cycle = static_cast<Cycle>(
        rng.next_below(static_cast<std::uint64_t>(ss.cycle_bound)));
  }
  return m;
}

/// Every externally observable piece of DeltaEval state, compared
/// bit-for-bit between the incrementally maintained evaluator and a
/// fresh full recompute of the same table.
void expect_state_identical(DeltaEval& inc, DeltaEval& fresh) {
  EXPECT_EQ(inc.causality_violations(), fresh.causality_violations());
  EXPECT_EQ(inc.exclusivity_violations(), fresh.exclusivity_violations());
  EXPECT_EQ(inc.storage_violations(), fresh.storage_violations());
  EXPECT_EQ(inc.bandwidth_violations(), fresh.bandwidth_violations());
  EXPECT_EQ(inc.makespan_cycles(), fresh.makespan_cycles());
  EXPECT_EQ(inc.legal(), fresh.legal());
  expect_cost_identical(inc.cost_report(), fresh.cost_report());
  for (const FigureOfMerit fom :
       {FigureOfMerit::kTime, FigureOfMerit::kEnergy,
        FigureOfMerit::kEnergyDelay}) {
    EXPECT_EQ(inc.merit(fom), fresh.merit(fom));
  }
}

/// DeltaEval counters vs the compiled verifier, legal() vs verify_ok,
/// and the cost report vs evaluate_cost, all on the evaluator's table.
void expect_matches_oracles(DeltaEval& de, EvalContext& ctx) {
  const CompiledSpec& cs = *de.strategy().cs;
  const TableMap& tm = de.table();
  const LegalityReport lr = verify(cs, tm, ctx, de.options());
  EXPECT_EQ(de.causality_violations(), lr.causality_violations);
  EXPECT_EQ(de.exclusivity_violations(), lr.exclusivity_violations);
  if (de.options().check_storage) {
    EXPECT_EQ(de.storage_violations(), lr.storage_violations);
  }
  if (de.options().check_bandwidth) {
    EXPECT_EQ(de.bandwidth_violations(), lr.bandwidth_violations);
  }
  EXPECT_EQ(de.legal(), lr.ok);
  EXPECT_EQ(de.legal(), verify_ok(cs, tm, ctx, de.options()));
  expect_cost_matches_oracle(de.cost_report(), evaluate_cost(cs, tm, ctx));
}

TEST(SeedTable, LegalOnIrregularDagAndMatchesOracles) {
  for (const bool output : {true, false}) {
    const Fixture f = make_fixture(24, output);
    const TableMap seed = seed_table(*f.ss);
    EvalContext ctx(*f.cs);
    EXPECT_TRUE(verify_ok(*f.cs, seed, ctx));
    DeltaEval de(f.ss);
    de.reset(seed);
    EXPECT_TRUE(de.legal());
    expect_matches_oracles(de, ctx);
  }
}

TEST(TableFromAffine, OracleParityCompiledAndLowered) {
  // The affine family embedded in the table space: the snapshot must
  // score and verify exactly like the AffineMap it came from, and the
  // lowered Mapping must agree with the legacy oracles bit-for-bit.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(6, 6, s);
  const MachineConfig cfg = make_machine(6, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  const auto cs = compile_spec(spec, cfg, proto);
  EvalContext ctx(*cs);
  const AffineMap amap{.ti = 1, .tj = 1, .t0 = 6, .xi = 1, .cols = 6,
                       .rows = 1};
  ASSERT_TRUE(verify_ok(*cs, amap, ctx));

  const TableMap tm = table_from_affine(*cs, amap);
  expect_cost_identical(evaluate_cost(*cs, tm, ctx),
                        evaluate_cost(*cs, amap, ctx));
  const LegalityReport via_table = verify(*cs, tm, ctx);
  const LegalityReport via_affine = verify(*cs, amap, ctx);
  EXPECT_EQ(via_table.ok, via_affine.ok);
  EXPECT_EQ(via_table.peak_live_values, via_affine.peak_live_values);
  EXPECT_EQ(via_table.peak_link_bits_per_cycle,
            via_affine.peak_link_bits_per_cycle);

  const Mapping lowered = to_mapping(spec, tm);
  expect_cost_identical(evaluate_cost(spec, lowered, cfg),
                        evaluate_cost(*cs, tm, ctx));
  EXPECT_TRUE(verify(spec, lowered, cfg).ok);
}

TEST(DeltaEval, RandomMoveSequenceParity) {
  // The S4 pin: after ANY sequence of applies, the incrementally
  // maintained state is bit-identical to a fresh reset() on the same
  // table, agrees with the compiled verifier/cost oracles, and undoing
  // the whole sequence restores the initial state exactly.
  for (const bool output : {true, false}) {
    SCOPED_TRACE(output ? "output target" : "intermediate target");
    const Fixture f = make_fixture(20, output);
    EvalContext ctx(*f.cs);
    const TableMap seed = seed_table(*f.ss);

    DeltaEval inc(f.ss);
    inc.reset(seed);
    DeltaEval fresh(f.ss);
    const CostReport initial = [&] {
      fresh.reset(seed);
      return fresh.cost_report();
    }();

    Rng rng(0xC0FFEEu + (output ? 1 : 0));
    std::vector<Move> inverses;
    for (int step = 0; step < 240; ++step) {
      inverses.push_back(inc.apply_move(random_move(*f.ss, rng)));
      if (step % 16 == 7) {
        fresh.reset(inc.table());
        expect_state_identical(inc, fresh);
        expect_matches_oracles(inc, ctx);
      }
    }
    // Full unwind restores the seed state bit-for-bit.
    for (auto it = inverses.rbegin(); it != inverses.rend(); ++it) {
      inc.undo_move(*it);
    }
    expect_cost_identical(inc.cost_report(), initial);
    fresh.reset(seed);
    expect_state_identical(inc, fresh);
  }
}

TEST(DeltaEval, SwapIsSelfInverse) {
  const Fixture f = make_fixture(12, true);
  DeltaEval de(f.ss);
  de.reset(seed_table(*f.ss));
  const CostReport before = de.cost_report();
  Move swap{MoveKind::kSwapOps, 2, 9, 0, 0};
  const Move inv = de.apply_move(swap);
  EXPECT_EQ(inv.kind, MoveKind::kSwapOps);
  de.undo_move(inv);
  expect_cost_identical(de.cost_report(), before);
}

TEST(DeltaEval, GatedChecksAffectLegalityOnly) {
  // With storage/bandwidth checks off, legal() must ignore those
  // violations — but the counters are still maintained and exact.
  const Fixture f = make_fixture(20, true);
  VerifyOptions off;
  off.check_storage = false;
  off.check_bandwidth = false;
  DeltaEval gated(f.ss, off);
  DeltaEval strict(f.ss);
  gated.reset(seed_table(*f.ss));
  strict.reset(seed_table(*f.ss));
  Rng rng(77);
  EvalContext ctx(*f.cs);
  for (int step = 0; step < 120; ++step) {
    const Move m = random_move(*f.ss, rng);
    (void)gated.apply_move(m);
    (void)strict.apply_move(m);
    if (step % 24 == 11) {
      EXPECT_EQ(gated.storage_violations(), strict.storage_violations());
      EXPECT_EQ(gated.bandwidth_violations(), strict.bandwidth_violations());
      EXPECT_EQ(gated.legal(), verify_ok(*f.cs, gated.table(), ctx, off));
      EXPECT_EQ(strict.legal(), verify_ok(*f.cs, strict.table(), ctx));
    }
  }
}

/// Byte-level equality of two search results: the placement table
/// itself plus every counter the drivers report.
void expect_result_identical(const StrategyResult& a,
                             const StrategyResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.best.pe, b.best.pe);
  EXPECT_EQ(a.best.cycle, b.best.cycle);
  EXPECT_EQ(a.best.input_home, b.best.input_home);
  EXPECT_EQ(a.merit, b.merit);
  EXPECT_EQ(a.moves_tried, b.moves_tried);
  EXPECT_EQ(a.moves_accepted, b.moves_accepted);
  EXPECT_EQ(a.moves_rejected_illegal, b.moves_rejected_illegal);
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.reheats, b.reheats);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.chains_used, b.chains_used);
  expect_cost_identical(a.cost, b.cost);
}

TEST(SearchTable, AnnealByteIdenticalAcrossWorkerCounts) {
  const Fixture f = make_fixture(24, true);
  StrategyOptions opts;
  opts.compiled = f.cs;
  opts.chains = 3;
  opts.epochs = 8;
  opts.iters_per_epoch = 64;
  const StrategyResult serial =
      search_table(f.spec, f.cfg, f.proto, StrategyKind::kAnneal, opts);
  ASSERT_TRUE(serial.found);
  EXPECT_TRUE(serial.completed);
  for (const unsigned workers : {1u, 4u, 8u}) {
    sched::Scheduler pool(workers);
    StrategyOptions par = opts;
    par.scheduler = &pool;
    const StrategyResult r =
        search_table(f.spec, f.cfg, f.proto, StrategyKind::kAnneal, par);
    SCOPED_TRACE(workers);
    expect_result_identical(r, serial);
  }
}

TEST(SearchTable, BeamByteIdenticalAcrossWorkerCounts) {
  const Fixture f = make_fixture(24, true);
  StrategyOptions opts;
  opts.compiled = f.cs;
  opts.epochs = 6;
  opts.beam_width = 4;
  opts.beam_moves = 12;
  const StrategyResult serial =
      search_table(f.spec, f.cfg, f.proto, StrategyKind::kBeam, opts);
  ASSERT_TRUE(serial.found);
  for (const unsigned workers : {1u, 4u, 8u}) {
    sched::Scheduler pool(workers);
    StrategyOptions par = opts;
    par.scheduler = &pool;
    const StrategyResult r =
        search_table(f.spec, f.cfg, f.proto, StrategyKind::kBeam, par);
    SCOPED_TRACE(workers);
    expect_result_identical(r, serial);
  }
}

TEST(SearchTable, WinnerIsLegalAndRescoredThroughFullOracle) {
  const Fixture f = make_fixture(24, true);
  StrategyOptions opts;
  opts.compiled = f.cs;
  opts.chains = 2;
  opts.epochs = 10;
  opts.iters_per_epoch = 96;
  const StrategyResult r =
      search_table(f.spec, f.cfg, f.proto, StrategyKind::kAnneal, opts);
  ASSERT_TRUE(r.found);
  EvalContext ctx(*f.cs);
  EXPECT_TRUE(verify_ok(*f.cs, r.best, ctx));
  expect_cost_identical(r.cost, evaluate_cost(*f.cs, r.best, ctx));
  EXPECT_EQ(r.merit, merit_value(r.cost, opts.fom));
  // The lowered mapping passes the legacy verifier too.
  EXPECT_TRUE(verify(f.spec, to_mapping(f.spec, r.best), f.cfg).ok);
}

TEST(SearchTable, AnnealReachesAffineOptimumOnTinySpace) {
  // On a space small enough for the exhaustive affine search, the table
  // search must do at least as well: the TableMap space contains every
  // affine schedule, and the budgeted anneal finds one at least as good.
  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(4, 4, s);
  const MachineConfig cfg = make_machine(4, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  SearchOptions aopts;
  const SearchResult affine = search_affine(spec, cfg, proto, aopts);
  ASSERT_TRUE(affine.found);

  StrategyOptions topts;
  topts.chains = 4;
  topts.epochs = 48;
  topts.iters_per_epoch = 256;
  const StrategyResult table =
      search_table(spec, cfg, proto, StrategyKind::kAnneal, topts);
  ASSERT_TRUE(table.found);
  EXPECT_LE(table.merit, affine.best.merit);
}

TEST(SearchTable, CancelReturnsBestSoFarIncomplete) {
  const Fixture f = make_fixture(24, true);
  StrategyOptions opts;
  opts.compiled = f.cs;
  opts.cancel = [] { return true; };  // cut at the first epoch poll
  const StrategyResult r =
      search_table(f.spec, f.cfg, f.proto, StrategyKind::kAnneal, opts);
  EXPECT_TRUE(r.found);  // the legal seed is always an answer
  EXPECT_FALSE(r.completed);
  EvalContext ctx(*f.cs);
  EXPECT_TRUE(verify_ok(*f.cs, r.best, ctx));
}

TEST(StrategyOptions, DegenerateValuesAreFM005) {
  EXPECT_TRUE(validate_strategy_options(StrategyOptions{}).empty());
  const auto expect_fm005 = [](StrategyOptions o) {
    const auto diags = validate_strategy_options(o);
    ASSERT_FALSE(diags.empty());
    for (const auto& d : diags) EXPECT_EQ(d.rule_id, "FM005");
  };
  StrategyOptions o;
  o.chains = 0;
  expect_fm005(o);
  o = {};
  o.iters_per_epoch = 0;
  expect_fm005(o);
  o = {};
  o.epochs = 0;
  expect_fm005(o);
  o = {};
  o.t0_fraction = 0.0;
  expect_fm005(o);
  o = {};
  o.cooling = 0.0;
  expect_fm005(o);
  o = {};
  o.cooling = 1.5;
  expect_fm005(o);
  o = {};
  o.stall_epochs = 0;
  expect_fm005(o);
  o = {};
  o.max_reheats = -1;
  expect_fm005(o);
  o = {};
  o.makespan_slack = 0.5;
  expect_fm005(o);
  o = {};
  o.beam_width = 0;
  expect_fm005(o);
  o = {};
  o.beam_moves = 0;
  expect_fm005(o);

  const Fixture f = make_fixture(8, true);
  StrategyOptions bad;
  bad.chains = 0;
  EXPECT_THROW((void)search_table(f.spec, f.cfg, f.proto,
                                  StrategyKind::kAnneal, bad),
               InvalidArgument);
}

TEST(SearchOptions, DegenerateValuesAreFM005) {
  // 0 used to silently mean "auto" for grain and was clamped for
  // quick_sample; both are now rejected (kAutoGrain is the sentinel).
  EXPECT_TRUE(validate_search_options(SearchOptions{}).empty());
  const auto expect_fm005 = [](SearchOptions o) {
    const auto diags = validate_search_options(o);
    ASSERT_FALSE(diags.empty());
    for (const auto& d : diags) EXPECT_EQ(d.rule_id, "FM005");
  };
  SearchOptions o;
  o.top_k = 0;
  expect_fm005(o);
  o = {};
  o.quick_sample = 0;
  expect_fm005(o);
  o = {};
  o.grain = 0;
  expect_fm005(o);

  algos::SwScores s;
  const FunctionSpec spec = algos::editdist_spec(4, 4, s);
  const MachineConfig cfg = make_machine(4, 1);
  Mapping proto;
  for (TensorId in : spec.input_tensors()) {
    proto.set_input(in, InputHome::distributed(
                            block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }
  SearchOptions bad;
  bad.grain = 0;
  EXPECT_THROW((void)search_affine(spec, cfg, proto, bad), InvalidArgument);
}

}  // namespace
}  // namespace harmony::fm
