// Tests for the default mapper, remapping idioms, mapping search, and
// hardware lowering (src/fm: default_mapper, idioms, search, lower).
#include <gtest/gtest.h>

#include <sstream>

#include "algos/editdist.hpp"
#include "algos/specs.hpp"
#include "fm/cost.hpp"
#include "fm/default_mapper.hpp"
#include "fm/idioms.hpp"
#include "fm/legality.hpp"
#include "fm/lower.hpp"
#include "fm/recompute.hpp"
#include "fm/search.hpp"

namespace harmony::fm {
namespace {

TEST(DefaultMapper, ProducesLegalMappingForEditDistance) {
  TensorId rt;
  TensorId qt;
  TensorId ht;
  algos::SwScores s;
  const auto spec = algos::editdist_spec(10, 9, s, &rt, &qt, &ht);
  const MachineConfig cfg = make_machine(4, 2);
  const Mapping m = default_mapping(spec, cfg);
  const LegalityReport rep = verify(spec, m, cfg);
  EXPECT_TRUE(rep.ok) << rep.first_message();
}

TEST(DefaultMapper, ExecutesToCorrectValues) {
  const std::string r = "TTGACCA";
  const std::string q = "TGCAAT";
  algos::SwScores s;
  const auto spec = algos::editdist_spec(
      static_cast<std::int64_t>(r.size()),
      static_cast<std::int64_t>(q.size()), s);
  const MachineConfig cfg = make_machine(3, 2);
  const Mapping m = default_mapping(spec, cfg);
  const auto res = GridMachine(cfg).run(
      spec, m, {algos::encode_string(r), algos::encode_string(q)});
  EXPECT_EQ(res.outputs[0], algos::smith_waterman_serial(r, q, s));
}

TEST(DefaultMapper, NoWorseThanSerialOnTime) {
  // The paper's "default mapper — with results no worse than with
  // today's abstractions" claim at unit-test scale.
  algos::SwScores s;
  const auto spec = algos::editdist_spec(12, 12, s);
  const MachineConfig cfg = make_machine(4, 1);
  const CostReport def =
      evaluate_cost(spec, default_mapping(spec, cfg), cfg);
  const CostReport ser = evaluate_cost(spec, serial_mapping(spec), cfg);
  EXPECT_LE(def.makespan_cycles, ser.makespan_cycles);
}

TEST(DefaultMapper, DramInputsAccounted) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(6, 6, s);
  const MachineConfig cfg = make_machine(2, 1);
  const Mapping m = default_mapping(spec, cfg, /*inputs_from_dram=*/true);
  const CostReport cost = evaluate_cost(spec, m, cfg);
  EXPECT_GT(cost.dram_energy.femtojoules(), 0.0);
}

// --- idioms ------------------------------------------------------------

TEST(Idioms, RemapIdentityIsFree) {
  const MachineConfig cfg = make_machine(4, 4);
  const IndexDomain dom(32);
  const auto d = block_distribution(dom, cfg.geom);
  const RemapCost c = remap_cost(dom, 32, d, d, cfg);
  EXPECT_EQ(c.messages, 0u);
  EXPECT_DOUBLE_EQ(c.energy.femtojoules(), 0.0);
}

TEST(Idioms, BlockToCyclicMovesMostElements) {
  const MachineConfig cfg = make_machine(4, 1);
  const IndexDomain dom(64);
  const RemapCost c =
      remap_cost(dom, 32, block_distribution(dom, cfg.geom),
                 cyclic_distribution(dom, cfg.geom), cfg);
  EXPECT_GT(c.moved_values, 32u);
  EXPECT_GT(c.energy.femtojoules(), 0.0);
}

TEST(Idioms, GatherScatterAreSymmetricInVolume) {
  const MachineConfig cfg = make_machine(4, 4);
  const IndexDomain dom(64);
  const auto d = block_distribution(dom, cfg.geom);
  const RemapCost g = gather_cost(dom, 32, d, {0, 0}, cfg);
  const RemapCost s = scatter_cost(dom, 32, {0, 0}, d, cfg);
  EXPECT_EQ(g.bit_hops, s.bit_hops);
  EXPECT_DOUBLE_EQ(g.energy.femtojoules(), s.energy.femtojoules());
}

TEST(Idioms, BroadcastTreeCoversAllPes) {
  const MachineConfig cfg = make_machine(4, 4);
  const RemapCost b = broadcast_cost(32, {0, 0}, cfg);
  EXPECT_EQ(b.moved_values, 15u);  // 16 PEs minus the root
  EXPECT_EQ(b.messages, 15u);
  const RemapCost r = reduce_tree_cost(32, {0, 0}, cfg);
  EXPECT_EQ(r.messages, b.messages);
}

TEST(Idioms, SimulatedRemapAtLeastAnalyticLatency) {
  const MachineConfig cfg = make_machine(4, 4);
  const IndexDomain dom(128);
  const auto from = block_distribution(dom, cfg.geom);
  const auto to = cyclic_distribution(dom, cfg.geom);
  const RemapCost analytic = remap_cost(dom, 32, from, to, cfg);
  noc::MeshNetwork net(cfg.geom);
  const Time simulated = remap_simulate(dom, 32, from, to, net);
  EXPECT_GE(simulated.picoseconds(),
            analytic.latency.picoseconds() - 1e-9);
}

TEST(Idioms, PipelineDetectsAlignmentAndPricesRemaps) {
  const MachineConfig cfg = make_machine(4, 1);
  const IndexDomain dom(32);
  const auto block = block_distribution(dom, cfg.geom);
  const auto cyc = cyclic_distribution(dom, cfg.geom);
  const std::vector<Stage> stages = {
      {"produce", dom, 32, block, block},
      {"aligned-consume", dom, 32, block, cyc},
      {"misaligned-consume", dom, 32, block, block},
  };
  const PipelineReport rep = compose_pipeline(stages, cfg);
  ASSERT_EQ(rep.joints.size(), 2u);
  EXPECT_TRUE(rep.joints[0].aligned);   // block -> block
  EXPECT_FALSE(rep.joints[1].aligned);  // cyclic -> block
  EXPECT_GT(rep.total_remap_energy.femtojoules(), 0.0);
}

TEST(Idioms, TransposedDistribution) {
  const MachineConfig cfg = make_machine(2, 2);
  const IndexDomain dom(4, 4);
  const auto tile = tile2d_distribution(dom, cfg.geom);
  const auto t = transposed(tile);
  EXPECT_EQ(t.place(Point{1, 3}), tile.place(Point{3, 1}));
}

// --- search ------------------------------------------------------------

TEST(Search, FindsLegalMappingForSmallEditDistance) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(12, 12, s);
  const MachineConfig cfg = make_machine(12, 1);
  Mapping proto;
  proto.set_input(0, InputHome::at({0, 0}));
  proto.set_input(1, InputHome::at({0, 0}));

  SearchOptions opts;
  opts.space.time_coeffs = {0, 1, 2};
  opts.space.space_coeffs = {-1, 0, 1};
  opts.fom = FigureOfMerit::kTime;
  const SearchResult res = search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(res.found);
  EXPECT_GT(res.legal, 0u);
  EXPECT_GT(res.quick_rejected + res.verify_rejected, 0u);

  // Whatever won must verify and beat the serial schedule.
  Mapping best;
  best.set_computed(2, res.best.map.place_fn(), res.best.map.time_fn());
  best.set_input(0, InputHome::at({0, 0}));
  best.set_input(1, InputHome::at({0, 0}));
  EXPECT_TRUE(verify(spec, best, cfg).ok);
  const CostReport serial = evaluate_cost(spec, serial_mapping(spec), cfg);
  EXPECT_LT(res.best.cost.makespan_cycles, serial.makespan_cycles);
}

TEST(Search, WavefrontEmergesAsTimeOptimalShape) {
  // On a wide-enough array, the time-optimal affine schedule for the DP
  // recurrence is the anti-diagonal wavefront t = i + j (+const).
  algos::SwScores s;
  const std::int64_t n = 10;
  const auto spec = algos::editdist_spec(n, n, s);
  const MachineConfig cfg = make_machine(static_cast<int>(n), 1);
  Mapping proto;
  proto.set_input(0, InputHome::at({0, 0}));
  proto.set_input(1, InputHome::at({0, 0}));
  SearchOptions opts;
  opts.space.time_coeffs = {0, 1, 2, 3};
  opts.space.space_coeffs = {-1, 0, 1};
  opts.fom = FigureOfMerit::kTime;
  const SearchResult res = search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.best.map.ti, 1);
  EXPECT_EQ(res.best.map.tj, 1);
  // Wavefront makespan is 2n-1 (+ input offset), far below serial n^2.
  EXPECT_LE(res.best.cost.makespan_cycles, 3 * n);
}

TEST(Search, TopKIsSortedByMerit) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(8, 8, s);
  const MachineConfig cfg = make_machine(8, 1);
  Mapping proto;
  proto.set_input(0, InputHome::at({0, 0}));
  proto.set_input(1, InputHome::at({0, 0}));
  SearchOptions opts;
  opts.top_k = 4;
  const SearchResult res = search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(res.found);
  for (std::size_t i = 1; i < res.top.size(); ++i) {
    EXPECT_LE(res.top[i - 1].merit, res.top[i].merit);
  }
  EXPECT_DOUBLE_EQ(res.top[0].merit, res.best.merit);
}

TEST(Search, ParetoFrontIsNonDominatedAndSorted) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(10, 10, s);
  const MachineConfig cfg = make_machine(10, 1);
  Mapping proto;
  proto.set_input(0, InputHome::at({0, 0}));
  proto.set_input(1, InputHome::at({0, 0}));
  SearchOptions opts;
  opts.keep_all_legal = true;
  const SearchResult res = search_affine(spec, cfg, proto, opts);
  ASSERT_GT(res.all_legal.size(), 1u);
  const auto front = pareto_front(res.all_legal);
  ASSERT_FALSE(front.empty());
  // Sorted by makespan; energy strictly decreasing along the front.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].cost.makespan_cycles,
              front[i - 1].cost.makespan_cycles);
    EXPECT_LT(front[i].cost.total_energy().femtojoules(),
              front[i - 1].cost.total_energy().femtojoules());
  }
  // Nothing on the front is dominated by any legal candidate.
  for (const Candidate& f : front) {
    for (const Candidate& c : res.all_legal) {
      const bool dominates =
          c.cost.makespan_cycles <= f.cost.makespan_cycles &&
          c.cost.total_energy().femtojoules() <
              f.cost.total_energy().femtojoules();
      EXPECT_FALSE(dominates &&
                   c.cost.makespan_cycles < f.cost.makespan_cycles);
    }
  }
}

TEST(Search, ParetoFrontOfEmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  Candidate c;
  c.cost.makespan_cycles = 5;
  const auto front = pareto_front({c});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].cost.makespan_cycles, 5);
}

TEST(Search, RequiresSingleComputedTensor) {
  auto build = algos::conv1d_weight_stationary(8, 4);  // 3 computed
  const MachineConfig cfg = make_machine(4, 1);
  Mapping proto;
  EXPECT_THROW((void)search_affine(build.spec, cfg, proto),
               InvalidArgument);
}

// --- recompute analysis -------------------------------------------------

TEST(Recompute, BroadcastOfDerivedValueIsProfitable) {
  // s = 2 * a (computed once on PE 0) feeds every element of b across
  // the grid.  With `a` co-resident at each consumer, recomputing s
  // locally (one 16 fJ op + an SRAM read) beats shipping it over
  // multi-hop wires — the paper's "compute the same element at multiple
  // points in space" case.
  FunctionSpec spec;
  const std::int64_t n = 16;
  const TensorId a = spec.add_input("a", IndexDomain(n), 32);
  const TensorId s = spec.add_computed(
      "s", IndexDomain(n),
      [a](const Point& p) {
        return std::vector<ValueRef>{{a, p}};
      },
      [](const Point&, const std::vector<double>& v) { return 2.0 * v[0]; },
      OpCost{.ops = 1.0, .bits = 32});
  const TensorId b = spec.add_computed(
      "b", IndexDomain(n),
      [s](const Point& p) {
        return std::vector<ValueRef>{{s, p}};
      },
      [](const Point&, const std::vector<double>& v) { return v[0] + 1.0; },
      OpCost{.ops = 1.0, .bits = 32});
  spec.mark_output(b);

  const MachineConfig cfg = make_machine(16, 1);
  Mapping m;
  // s lives on PE 0; b(i) on PE i — every edge s(i) -> b(i) is remote.
  m.set_computed(s, [](const Point&) { return noc::Coord{0, 0}; },
                 [](const Point& p) { return Cycle{p.i + 16}; });
  m.set_computed(
      b,
      [](const Point& p) {
        return noc::Coord{static_cast<int>(p.i), 0};
      },
      [](const Point& p) { return Cycle{p.i + 64}; });
  // Each a(i) is pre-loaded where b(i) runs (co-resident).
  m.set_input(a, InputHome::distributed([](const Point& p) {
                return noc::Coord{static_cast<int>(p.i), 0};
              }));

  const RecomputeReport rep = recompute_report(spec, m, cfg);
  EXPECT_EQ(rep.remote_edges, 15u);  // b(0) is local to s(0)
  EXPECT_EQ(rep.feasible_edges, 15u);
  EXPECT_EQ(rep.profitable_edges, 15u);
  EXPECT_GT(rep.savings_fraction(), 0.8);
}

TEST(Recompute, DeepChainsAreInfeasibleAtDepthOne) {
  // The DP wavefront's H -> H edges have non-input producers: nothing is
  // depth-1 recomputable, so the report must not promise savings.
  algos::SwScores scores;
  TensorId rt;
  TensorId qt;
  TensorId ht;
  const auto spec = algos::editdist_spec(10, 10, scores, &rt, &qt, &ht);
  Mapping m;
  const WavefrontMap wf = wavefront_map(10, 5);
  m.set_computed(ht, wf.place_fn(), wf.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));
  const RecomputeReport rep =
      recompute_report(spec, m, make_machine(5, 1));
  EXPECT_GT(rep.remote_edges, 0u);
  // Only H(0,0)'s consumers have an all-input producer.
  EXPECT_LE(rep.feasible_edges, 2u);
  EXPECT_DOUBLE_EQ(rep.best_energy.femtojoules() + rep.savings().femtojoules(),
                   rep.move_energy.femtojoules());
}

// --- lowering ----------------------------------------------------------

TEST(Lower, WavefrontArrayShape) {
  algos::SwScores s;
  TensorId rt;
  TensorId qt;
  TensorId ht;
  const std::int64_t n = 8;
  const int pes = 4;
  const auto spec = algos::editdist_spec(n, n, s, &rt, &qt, &ht);
  Mapping m;
  const WavefrontMap wf = wavefront_map(n, pes);
  m.set_computed(ht, wf.place_fn(), wf.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));
  const MachineConfig cfg = make_machine(pes, 1);
  const HardwareSpec hw = lower(spec, m, cfg, "editdist");
  EXPECT_EQ(hw.active_pes(), static_cast<std::size_t>(pes));
  // Work is balanced: every PE computes n*n/P cells.
  for (const PeSpec& pe : hw.pes) {
    if (pe.is_active()) {
      EXPECT_EQ(pe.ops, static_cast<std::uint64_t>(n * n / pes));
      EXPECT_GT(pe.registers, 0);
    }
  }
  EXPECT_GT(hw.estimated_area().mm2(), 0.0);
}

TEST(Lower, VerilogSkeletonMentionsModulesAndInstances) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(6, 6, s);
  const MachineConfig cfg = make_machine(3, 1);
  Mapping m;
  const WavefrontMap wf = wavefront_map(6, 3);
  m.set_computed(2, wf.place_fn(), wf.time_fn());
  m.set_input(0, InputHome::at({0, 0}));
  m.set_input(1, InputHome::at({0, 0}));
  const HardwareSpec hw = lower(spec, m, cfg, "dp");
  std::ostringstream os;
  hw.emit_verilog(os);
  const std::string v = os.str();
  EXPECT_NE(v.find("module dp_pe_c0"), std::string::npos);
  EXPECT_NE(v.find("module dp_top"), std::string::npos);
  EXPECT_NE(v.find("pe_x0_y0"), std::string::npos);
}

TEST(Lower, SerialMappingUsesOnePe) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(5, 5, s);
  const MachineConfig cfg = make_machine(4, 4);
  const HardwareSpec hw = lower(spec, serial_mapping(spec), cfg);
  EXPECT_EQ(hw.active_pes(), 1u);
  EXPECT_EQ(hw.pes[0].ops, 25u);
}

// --- verify edge cases --------------------------------------------------

TEST(VerifyEdgeCases, MaxMessagesTruncatesRecordsButNotCounters) {
  // All-at-origin mapping: every one of the 36 elements collides, so the
  // violation counters must race past a tiny diagnostic cap.
  TensorId rt;
  TensorId qt;
  TensorId ht;
  const auto spec =
      algos::editdist_spec(6, 6, algos::SwScores{}, &rt, &qt, &ht);
  const MachineConfig cfg = make_machine(2, 2);
  AffineMap am;
  am.cols = 2;
  am.rows = 2;
  Mapping m;
  m.set_computed(ht, am.place_fn(), am.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));

  VerifyOptions opts;
  opts.max_messages = 3;
  const LegalityReport rep = verify(spec, m, cfg, opts);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.diagnostics.size(), 3u);
  EXPECT_GT(rep.total_violations(), 3u);
  EXPECT_EQ(rep.exclusivity_violations, 35u);  // 36 elements, one slot

  // max_messages = 0 keeps counting with no records at all.
  opts.max_messages = 0;
  const LegalityReport none = verify(spec, m, cfg, opts);
  EXPECT_TRUE(none.diagnostics.empty());
  EXPECT_EQ(none.total_violations(), rep.total_violations());
}

TEST(VerifyEdgeCases, StorageAndBandwidthTogglesSkipTheirChecks) {
  // A 1-value PE capacity and a starved link make both optional checks
  // fire; toggling each off must silence exactly that family.
  TensorId rt;
  TensorId qt;
  TensorId ht;
  const auto spec =
      algos::editdist_spec(8, 8, algos::SwScores{}, &rt, &qt, &ht);
  MachineConfig cfg = make_machine(4, 1);
  cfg.pe_capacity_values = 1;
  cfg.link_bits_per_cycle = 0.5;
  const WavefrontMap wf = wavefront_map(8, 4);
  Mapping m;
  m.set_computed(ht, wf.place_fn(), wf.time_fn());
  m.set_input(rt, InputHome::at({0, 0}));
  m.set_input(qt, InputHome::at({0, 0}));

  const LegalityReport both = verify(spec, m, cfg);
  EXPECT_GT(both.storage_violations, 0u);
  EXPECT_GT(both.bandwidth_violations, 0u);

  VerifyOptions no_storage;
  no_storage.check_storage = false;
  const LegalityReport ns = verify(spec, m, cfg, no_storage);
  EXPECT_EQ(ns.storage_violations, 0u);
  EXPECT_EQ(ns.peak_live_values, 0);
  EXPECT_EQ(ns.peak_live_pe, -1);
  EXPECT_GT(ns.bandwidth_violations, 0u);

  VerifyOptions no_bandwidth;
  no_bandwidth.check_bandwidth = false;
  const LegalityReport nb = verify(spec, m, cfg, no_bandwidth);
  EXPECT_EQ(nb.bandwidth_violations, 0u);
  EXPECT_DOUBLE_EQ(nb.peak_link_bits_per_cycle, 0.0);
  EXPECT_EQ(nb.peak_link, -1);
  EXPECT_GT(nb.storage_violations, 0u);

  VerifyOptions neither;
  neither.check_storage = false;
  neither.check_bandwidth = false;
  const LegalityReport off = verify(spec, m, cfg, neither);
  EXPECT_TRUE(off.ok);  // causality and exclusivity still hold
}

TEST(VerifyEdgeCases, IncompleteMappingThrowsInvalidArgument) {
  TensorId rt;
  TensorId qt;
  TensorId ht;
  const auto spec =
      algos::editdist_spec(4, 4, algos::SwScores{}, &rt, &qt, &ht);
  const MachineConfig cfg = make_machine(2, 1);

  const Mapping empty;
  EXPECT_THROW((void)verify(spec, empty, cfg), InvalidArgument);

  // Computed tensor mapped but inputs homeless: still incomplete.
  Mapping partial;
  partial.set_computed(ht, [](const Point&) { return noc::Coord{0, 0}; },
                       [](const Point& p) { return Cycle{p.i * 4 + p.j}; });
  EXPECT_THROW((void)verify(spec, partial, cfg), InvalidArgument);
}

}  // namespace
}  // namespace harmony::fm
