// harmony-lint exit-code contract (satellite b): 0 clean, 1 warnings
// only, 2 errors — over the merged lint + --check-exec counts — plus
// the --json output path.  Drives the real binary (HARMONY_LINT_BIN,
// injected by tests/CMakeLists.txt as $<TARGET_FILE:harmony_lint>).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string out;
};

CliResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(HARMONY_LINT_BIN) + " " + args + " 2>&1";
  CliResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.out.append(buf, n);
  }
  const int rc = pclose(pipe);
  r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return r;
}

TEST(HarmonyLintCli, CleanMappingExitsZero) {
  const CliResult r =
      run_lint("--spec=editdist:16x16 --machine=4x1 --map=wavefront");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("legal"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("0 error(s), 0 warning(s)"), std::string::npos)
      << r.out;
}

TEST(HarmonyLintCli, WarningOnlyMappingExitsOne) {
  // The wavefront uses one mesh row; on 4x4 the idle PEs draw an
  // underutilization warning (FM101) but the mapping stays legal.
  const CliResult r =
      run_lint("--spec=editdist:16x16 --machine=4x4 --map=wavefront");
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("legal"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("FM101"), std::string::npos) << r.out;
}

TEST(HarmonyLintCli, IllegalMappingExitsTwo) {
  const CliResult r = run_lint(
      "--spec=editdist:8x8 --machine=2x1 --map=affine:0,0,0,0,0,0");
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find("ILLEGAL"), std::string::npos) << r.out;
}

TEST(HarmonyLintCli, JsonOutputCarriesTheDiagnosticsAndSameExit) {
  const CliResult r = run_lint(
      "--spec=editdist:16x16 --machine=4x4 --map=wavefront --json");
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_EQ(r.out.front(), '[') << r.out;
  EXPECT_NE(r.out.find("\"rule\": \"FM101\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"severity\": \"warning\""), std::string::npos)
      << r.out;
}

TEST(HarmonyLintCli, CheckExecCleanAffineFixtureExitsZero) {
  const CliResult r = run_lint(
      "--spec=editdist:16x16 --machine=4x1 --map=wavefront --check-exec");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("[exec checked]"), std::string::npos) << r.out;
}

TEST(HarmonyLintCli, CheckExecCleanTableFixtureExitsZero) {
  const CliResult r = run_lint(
      "--spec=stencil:64,8 --machine=4x1 --map=table --check-exec");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("[exec checked]"), std::string::npos) << r.out;
}

TEST(HarmonyLintCli, CheckExecMergesIntoTheExitCode) {
  const CliResult r =
      run_lint("--spec=editdist:8x8 --machine=2x1 "
               "--map=affine:0,0,0,0,0,0 --check-exec");
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find("[exec checked]"), std::string::npos) << r.out;
}

TEST(HarmonyLintCli, BadArgumentsExitTwo) {
  EXPECT_EQ(run_lint("--map=nonsense").exit_code, 2);
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
}

}  // namespace
