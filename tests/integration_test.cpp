// Cross-module integration tests: each one walks a full experiment
// pipeline at unit-test scale (spec -> verify -> simulate -> validate).
#include <gtest/gtest.h>

#include "algos/editdist.hpp"
#include "algos/matmul.hpp"
#include "algos/scan.hpp"
#include "algos/specs.hpp"
#include "cache/aram.hpp"
#include "cache/cache.hpp"
#include "cache/traced.hpp"
#include "fm/cost.hpp"
#include "fm/default_mapper.hpp"
#include "fm/idioms.hpp"
#include "fm/legality.hpp"
#include "fm/lower.hpp"
#include "fm/machine.hpp"
#include "fm/search.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"
#include "sched/workspan.hpp"
#include "support/rng.hpp"

namespace harmony {
namespace {

// E2 end-to-end: the paper's edit-distance example from spec to silicon.
TEST(Integration, EditDistanceSpecToVerifyToExecuteToLower) {
  const std::string r = "GATTACAGATTACA";
  const std::string q = "GCATGCTTAGGCAT";
  algos::SwScores scores;
  fm::TensorId rt;
  fm::TensorId qt;
  fm::TensorId ht;
  const auto spec = algos::editdist_spec(
      static_cast<std::int64_t>(r.size()),
      static_cast<std::int64_t>(q.size()), scores, &rt, &qt, &ht);

  const int pes = 7;
  const fm::MachineConfig cfg = fm::make_machine(pes, 1);
  fm::Mapping m;
  const fm::WavefrontMap wf =
      fm::wavefront_map(static_cast<std::int64_t>(q.size()), pes);
  m.set_computed(ht, wf.place_fn(), wf.time_fn());
  m.set_input(rt, fm::InputHome::at({0, 0}));
  m.set_input(qt, fm::InputHome::at({0, 0}));

  // 1. Verify (the Martonosi discipline: no unverified mapping runs).
  const fm::LegalityReport rep = fm::verify(spec, m, cfg);
  ASSERT_TRUE(rep.ok) << rep.first_message();

  // 2. Execute and validate against the host reference.
  const auto res = fm::GridMachine(cfg).run(
      spec, m, {algos::encode_string(r), algos::encode_string(q)});
  EXPECT_EQ(res.outputs[0],
            algos::smith_waterman_serial(r, q, scores));

  // 3. Analytic cost agrees with the executed ledger.
  const fm::CostReport cost = fm::evaluate_cost(spec, m, cfg);
  EXPECT_EQ(cost.makespan_cycles, res.makespan_cycles);
  EXPECT_DOUBLE_EQ(cost.total_energy().femtojoules(),
                   res.total_energy().femtojoules());

  // 4. Lower to hardware: P active PEs, balanced ops.
  const fm::HardwareSpec hw = fm::lower(spec, m, cfg, "sw_array");
  EXPECT_EQ(hw.active_pes(), static_cast<std::size_t>(pes));
  EXPECT_EQ(hw.schedule_length, res.makespan_cycles);
}

// E8 end-to-end: autotuned mapping must beat the serial mapping and be
// verified legal, and the best-found schedule must execute correctly.
TEST(Integration, SearchedMappingExecutesCorrectly) {
  const std::string r = "ACGTACGTAC";
  const std::string q = "TACGTTACGA";
  algos::SwScores scores;
  const auto spec = algos::editdist_spec(
      static_cast<std::int64_t>(r.size()),
      static_cast<std::int64_t>(q.size()), scores);
  const fm::MachineConfig cfg =
      fm::make_machine(static_cast<int>(r.size()), 1);

  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  proto.set_input(1, fm::InputHome::at({0, 0}));
  fm::SearchOptions opts;
  opts.fom = fm::FigureOfMerit::kTime;
  const fm::SearchResult sr = fm::search_affine(spec, cfg, proto, opts);
  ASSERT_TRUE(sr.found);

  fm::Mapping best;
  best.set_computed(2, sr.best.map.place_fn(), sr.best.map.time_fn());
  best.set_input(0, fm::InputHome::at({0, 0}));
  best.set_input(1, fm::InputHome::at({0, 0}));
  const auto res = fm::GridMachine(cfg).run(
      spec, best, {algos::encode_string(r), algos::encode_string(q)});
  EXPECT_EQ(res.outputs[0],
            algos::smith_waterman_serial(r, q, scores));
}

// E6 end-to-end: one source program, three execution substrates —
// the real scheduler, the work-span analyzer, and plain serial.
TEST(Integration, OneScanSourceThreeSubstrates) {
  const std::size_t n = 20000;
  Rng rng(1);
  std::vector<std::int64_t> input(n);
  for (auto& v : input) v = rng.next_int(0, 9);

  std::vector<std::int64_t> serial_out;
  const std::int64_t serial_total =
      algos::exclusive_scan_seq(input, serial_out);

  // Work-span analyzer.
  sched::WorkSpanCtx ws;
  auto ws_data = input;
  const std::int64_t ws_total = algos::exclusive_scan(ws, ws_data, 64);
  EXPECT_EQ(ws_total, serial_total);
  EXPECT_EQ(ws_data, serial_out);
  EXPECT_GT(ws.parallelism(), 16.0);

  // Real threads.
  sched::Scheduler sched(4);
  sched::RealCtx real;
  auto real_data = input;
  std::int64_t real_total = 0;
  sched.run([&] {
    real_total = algos::exclusive_scan(real, real_data, 64);
  });
  EXPECT_EQ(real_total, serial_total);
  EXPECT_EQ(real_data, serial_out);
}

// E5 end-to-end: one matmul kernel, real values + cache + ARAM sinks.
TEST(Integration, TracedMatmulComputesAndCounts) {
  const std::size_t n = 24;
  Rng rng(6);
  std::vector<double> av(n * n);
  std::vector<double> bv(n * n);
  for (auto& v : av) v = rng.next_double(-1, 1);
  for (auto& v : bv) v = rng.next_double(-1, 1);
  const auto expect = algos::matmul_serial(av, bv, n);

  cache::CacheHierarchy h = cache::make_single_level(8 * 1024, 64);
  cache::CacheSink cs(h);
  cache::AramCounter aram;
  cache::TeeSink tee({&cs, &aram});
  cache::AddressSpace space;
  cache::TracedArray<double> a(av, space, tee);
  cache::TracedArray<double> b(bv, space, tee);
  cache::TracedArray<double> c(n * n, space, tee);
  algos::matmul_oblivious(a, b, c, n);
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(c.raw()[i], expect[i], 1e-9);
  }
  EXPECT_GT(h.level_stats(0).misses(), 0u);
  // Each inner step reads a and b once (2n^3); c is re-read once per
  // (i,j,k-segment) leaf tile — a handful of segments at this size.
  EXPECT_GE(aram.reads(), static_cast<std::uint64_t>(2 * n * n * n + n * n));
  EXPECT_LE(aram.reads(),
            static_cast<std::uint64_t>(2 * n * n * n + 8 * n * n));
}

// E12 mechanism: the same function priced on CPU vs grid vs lowered array.
TEST(Integration, SpecializationEnergyOrdering) {
  const auto build = algos::conv1d_weight_stationary(64, 8);
  const fm::MachineConfig cfg = fm::make_machine(8, 1);
  ASSERT_TRUE(fm::verify(build.spec, build.mapping, cfg).ok);
  const fm::CostReport grid =
      fm::evaluate_cost(build.spec, build.mapping, cfg);

  // CPU: every op pays the 10,000x instruction overhead.
  const noc::TechnologyModel tech = cfg.geom.tech();
  const Energy cpu_energy =
      tech.cpu_instruction_energy(32) * grid.total_ops;

  EXPECT_GT(cpu_energy / grid.total_energy(), 100.0)
      << "the grid must be orders of magnitude more efficient";
  // And the energy per op on the grid stays within ~two orders of the
  // raw add energy (movement is neighbour-only).
  EXPECT_LT(grid.energy_per_op() / tech.op_energy(32), 100.0);
}

// The full F&M tool chain in one flow: search a mapping on a wide
// machine, fold the winner onto a narrow one, verify, execute, lower.
TEST(Integration, SearchThenFoldThenExecuteThenLower) {
  algos::SwScores scores;
  const std::int64_t n = 12;
  fm::TensorId rt;
  fm::TensorId qt;
  fm::TensorId ht;
  const auto spec = algos::editdist_spec(n, n, scores, &rt, &qt, &ht);

  // 1. Search on the wide (n-column) machine.
  const fm::MachineConfig wide = fm::make_machine(static_cast<int>(n), 1);
  fm::Mapping proto;
  proto.set_input(rt, fm::InputHome::at({0, 0}));
  proto.set_input(qt, fm::InputHome::at({0, 0}));
  fm::SearchOptions opts;
  opts.fom = fm::FigureOfMerit::kTime;
  const fm::SearchResult sr = fm::search_affine(spec, wide, proto, opts);
  ASSERT_TRUE(sr.found);

  // 2. Fold the winner onto 4 physical columns.
  const fm::FoldedMap folded = fm::fold_columns(
      sr.best.map.place_fn(), sr.best.map.time_fn(), static_cast<int>(n),
      4);
  fm::Mapping m;
  m.set_computed(ht, folded.place, folded.time);
  m.set_input(rt, fm::InputHome::at({0, 0}));
  m.set_input(qt, fm::InputHome::at({0, 0}));

  // 3. Verify on the narrow machine and execute.
  const fm::MachineConfig narrow = fm::make_machine(4, 1);
  const fm::LegalityReport rep = fm::verify(spec, m, narrow);
  ASSERT_TRUE(rep.ok) << rep.first_message();
  const std::string r = "ACGTTGCAACGT";
  const std::string q = "TGCAACGTACGT";
  const auto res = fm::GridMachine(narrow).run(
      spec, m, {algos::encode_string(r), algos::encode_string(q)});
  EXPECT_EQ(res.outputs[0], algos::smith_waterman_serial(r, q, scores));

  // 4. Lower: exactly the 4 physical PEs are active.
  const fm::HardwareSpec hw = fm::lower(spec, m, narrow, "folded");
  EXPECT_EQ(hw.active_pes(), 4u);
}

// Composition: mapping-mismatch detection catches a transpose remap.
TEST(Integration, PipelineInsertsTransposeRemap) {
  const fm::MachineConfig cfg = fm::make_machine(4, 4);
  const fm::IndexDomain dom(16, 16);
  const auto tiles = fm::tile2d_distribution(dom, cfg.geom);
  const std::vector<fm::Stage> stages = {
      {"matmul", dom, 32, tiles, tiles},
      {"transpose-consumer", dom, 32, fm::transposed(tiles), tiles},
  };
  const fm::PipelineReport rep = fm::compose_pipeline(stages, cfg);
  ASSERT_EQ(rep.joints.size(), 1u);
  EXPECT_FALSE(rep.joints[0].aligned);
  EXPECT_GT(rep.joints[0].remap.moved_values, 0u);
}

}  // namespace
}  // namespace harmony
