// Tests for the memory-consistency checkers (src/memmodel): the classic
// litmus table under SC and TSO, operational/axiomatic cross-validation,
// and witness sanity.
#include <gtest/gtest.h>

#include "memmodel/litmus.hpp"
#include "support/rng.hpp"

namespace harmony::memmodel {
namespace {

// Table-driven ground truth: every classic test, both models, both
// checkers (axiomatic skipped for RMW tests).
class ClassicLitmus : public ::testing::TestWithParam<LitmusTest> {};

TEST_P(ClassicLitmus, OperationalScMatchesGroundTruth) {
  const LitmusTest& t = GetParam();
  const CheckResult r = check_operational(t, Model::kSc);
  EXPECT_EQ(r.condition_reachable, t.allowed_sc) << t.name;
  EXPECT_GT(r.executions_explored, 0u);
}

TEST_P(ClassicLitmus, OperationalTsoMatchesGroundTruth) {
  const LitmusTest& t = GetParam();
  const CheckResult r = check_operational(t, Model::kTso);
  EXPECT_EQ(r.condition_reachable, t.allowed_tso) << t.name;
}

TEST_P(ClassicLitmus, AxiomaticAgreesWithOperational) {
  const LitmusTest& t = GetParam();
  if (t.uses_rmw()) GTEST_SKIP() << "axiomatic checker has no RMW";
  for (Model m : {Model::kSc, Model::kTso}) {
    const CheckResult op = check_operational(t, m);
    const CheckResult ax = check_axiomatic(t, m);
    EXPECT_EQ(ax.condition_reachable, op.condition_reachable)
        << t.name << " under " << (m == Model::kSc ? "SC" : "TSO");
  }
}

TEST_P(ClassicLitmus, TsoIsWeakerThanSc) {
  // Everything SC allows, TSO allows (SC executions are TSO executions
  // with eager flushes).
  const LitmusTest& t = GetParam();
  const CheckResult sc = check_operational(t, Model::kSc);
  const CheckResult tso = check_operational(t, Model::kTso);
  if (sc.condition_reachable) {
    EXPECT_TRUE(tso.condition_reachable) << t.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ClassicLitmus, ::testing::ValuesIn(classic_suite()),
    [](const ::testing::TestParamInfo<LitmusTest>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Litmus, SbWitnessIsProducedOnTso) {
  const CheckResult r = check_operational(store_buffering(), Model::kTso);
  ASSERT_TRUE(r.condition_reachable);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_FALSE(r.witness->empty());
  // The witness must mention a buffered store flush (the TSO mechanism).
  bool has_flush = false;
  for (const auto& step : *r.witness) {
    if (step.find("flush") != std::string::npos) has_flush = true;
  }
  EXPECT_TRUE(has_flush);
}

TEST(Litmus, ScExploresExactlyTheInterleavings) {
  // SB has 2 threads x 2 ops: C(4,2) = 6 interleavings, but distinct
  // final states may collapse under memoization; at minimum > 1 final
  // state and no TSO buffer states.
  const CheckResult r = check_operational(store_buffering(), Model::kSc);
  EXPECT_GE(r.executions_explored, 3u);
  EXPECT_GT(r.states_visited, r.executions_explored);
}

TEST(Litmus, FencesRestoreScForSb) {
  const CheckResult plain =
      check_operational(store_buffering(), Model::kTso);
  const CheckResult fenced =
      check_operational(store_buffering_fenced(), Model::kTso);
  EXPECT_TRUE(plain.condition_reachable);
  EXPECT_FALSE(fenced.condition_reachable);
}

TEST(Litmus, RmwDrainsBufferLikeAFence) {
  const CheckResult r =
      check_operational(store_buffering_rmw(), Model::kTso);
  EXPECT_FALSE(r.condition_reachable);
}

TEST(Litmus, AxiomaticRejectsRmw) {
  EXPECT_THROW((void)check_axiomatic(store_buffering_rmw(), Model::kSc),
               InvalidArgument);
}

TEST(Litmus, StoreForwardingObservableOnTso) {
  // A thread must see its own buffered store even before it flushes.
  LitmusTest t;
  t.name = "own-store-forwarding";
  t.num_locs = 1;
  t.threads = {{Op::store(0, 1), Op::load(0)}};
  t.condition = [](const FinalState& s) { return s.regs[0][1] == 0; };
  const CheckResult r = check_operational(t, Model::kTso);
  EXPECT_FALSE(r.condition_reachable);  // can never read the stale 0
}

TEST(Litmus, FinalMemoryConditionChecked) {
  LitmusTest t;
  t.name = "final-mem";
  t.num_locs = 1;
  t.threads = {{Op::store(0, 1)}, {Op::store(0, 2)}};
  t.condition = [](const FinalState& s) { return s.mem[0] == 1; };
  // Either order is possible: condition reachable under both models.
  EXPECT_TRUE(check_operational(t, Model::kSc).condition_reachable);
  EXPECT_TRUE(check_operational(t, Model::kTso).condition_reachable);
  EXPECT_TRUE(check_axiomatic(t, Model::kSc).condition_reachable);
  EXPECT_TRUE(check_axiomatic(t, Model::kTso).condition_reachable);
}

TEST(Litmus, CoherenceHoldsEvenOnTso) {
  // CoRW1: a load po-after a store to the same location cannot read an
  // older external value once the own store is buffered. Simplified via
  // corr() already; here check write order via final memory.
  LitmusTest t;
  t.name = "coww";
  t.num_locs = 1;
  t.threads = {{Op::store(0, 1), Op::store(0, 2)}};
  t.condition = [](const FinalState& s) { return s.mem[0] == 1; };
  EXPECT_FALSE(check_operational(t, Model::kSc).condition_reachable);
  EXPECT_FALSE(check_operational(t, Model::kTso).condition_reachable);
  EXPECT_FALSE(check_axiomatic(t, Model::kTso).condition_reachable);
}

TEST_P(ClassicLitmus, OperationalPsoMatchesGroundTruth) {
  const LitmusTest& t = GetParam();
  const CheckResult r = check_operational(t, Model::kPso);
  EXPECT_EQ(r.condition_reachable, t.allowed_pso) << t.name;
}

TEST_P(ClassicLitmus, AxiomaticPsoAgreesWithOperational) {
  const LitmusTest& t = GetParam();
  if (t.uses_rmw()) GTEST_SKIP() << "axiomatic checker has no RMW";
  const CheckResult op = check_operational(t, Model::kPso);
  const CheckResult ax = check_axiomatic(t, Model::kPso);
  EXPECT_EQ(ax.condition_reachable, op.condition_reachable) << t.name;
}

TEST_P(ClassicLitmus, PsoIsWeakerThanTso) {
  const LitmusTest& t = GetParam();
  const CheckResult tso = check_operational(t, Model::kTso);
  const CheckResult pso = check_operational(t, Model::kPso);
  if (tso.condition_reachable) {
    EXPECT_TRUE(pso.condition_reachable) << t.name;
  }
}

TEST(Litmus, PsoAllowsMessagePassingReorder) {
  // The canonical PSO surprise: the data/flag writes drain out of order.
  const CheckResult pso = check_operational(message_passing(), Model::kPso);
  EXPECT_TRUE(pso.condition_reachable);
  const CheckResult tso = check_operational(message_passing(), Model::kTso);
  EXPECT_FALSE(tso.condition_reachable);
}

TEST(FenceSynthesis, SbNeedsOneFencePerThreadOnTso) {
  const FenceSynthesisResult r =
      synthesize_fences(store_buffering(), Model::kTso);
  EXPECT_FALSE(r.already_forbidden);
  ASSERT_FALSE(r.minimal_sets.empty());
  // Minimal repair: a fence between the store and the load in *both*
  // threads (one alone cannot forbid the outcome).
  for (const auto& set : r.minimal_sets) {
    EXPECT_EQ(set.size(), 2u);
  }
  EXPECT_EQ(r.minimal_sets.size(), 1u);  // only one two-fence placement
  EXPECT_EQ(r.minimal_sets[0][0], (FencePlacement{0, 1}));
  EXPECT_EQ(r.minimal_sets[0][1], (FencePlacement{1, 1}));
}

TEST(FenceSynthesis, MpOnPsoNeedsOnlyTheWriterFence) {
  // Under PSO only the writer's W->W pair reorders; one fence fixes it.
  const FenceSynthesisResult r =
      synthesize_fences(message_passing(), Model::kPso);
  ASSERT_FALSE(r.minimal_sets.empty());
  for (const auto& set : r.minimal_sets) {
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], (FencePlacement{0, 1}));  // between the two stores
  }
}

TEST(FenceSynthesis, AlreadyForbiddenShortCircuits) {
  const FenceSynthesisResult r =
      synthesize_fences(message_passing(), Model::kTso);
  EXPECT_TRUE(r.already_forbidden);
  EXPECT_TRUE(r.minimal_sets.empty());
  EXPECT_EQ(r.candidates_tried, 0u);
}

TEST(FenceSynthesis, SynthesizedFencesVerifyEndToEnd) {
  // Apply the found repair manually and re-check all three models.
  const FenceSynthesisResult r =
      synthesize_fences(two_plus_two_w(), Model::kPso);
  ASSERT_FALSE(r.minimal_sets.empty());
  LitmusTest repaired = two_plus_two_w();
  // Re-derive the repaired program: insert fences at the first minimal
  // set's placements (descending order to keep indices stable).
  auto fences = r.minimal_sets[0];
  std::sort(fences.begin(), fences.end(),
            [](const FencePlacement& a, const FencePlacement& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.before_op > b.before_op;
            });
  for (const auto& f : fences) {
    auto& ops = repaired.threads[static_cast<std::size_t>(f.thread)];
    ops.insert(ops.begin() + f.before_op, Op::fence());
  }
  EXPECT_FALSE(check_operational(repaired, Model::kPso)
                   .condition_reachable);
  EXPECT_FALSE(check_operational(repaired, Model::kTso)
                   .condition_reachable);
}

// --- randomized cross-validation of the two formal engines ---------------
//
// Generate small random programs (no RMW) and random final conditions,
// then require:
//   1. operational and axiomatic verdicts agree under SC, TSO, and PSO;
//   2. the model hierarchy SC <= TSO <= PSO holds (anything SC allows,
//      the weaker models allow).
// This is the strongest evidence the two independent specifications
// define the same architectures.

namespace {

LitmusTest random_litmus(Rng& rng) {
  LitmusTest t;
  t.name = "fuzz";
  t.num_locs = 2;
  const int threads = 2 + static_cast<int>(rng.next_below(2));
  // Collect the load sites so the condition can reference them.
  std::vector<std::pair<std::size_t, std::size_t>> load_sites;
  for (int th = 0; th < threads; ++th) {
    std::vector<Op> ops;
    const int len = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < len; ++i) {
      const int loc = static_cast<int>(rng.next_below(2));
      switch (rng.next_below(4)) {
        case 0:
        case 1:
          load_sites.emplace_back(t.threads.size(), ops.size());
          ops.push_back(Op::load(loc));
          break;
        case 2:
          ops.push_back(Op::store(loc, 1 + static_cast<int>(
                                             rng.next_below(2))));
          break;
        default:
          ops.push_back(Op::fence());
          break;
      }
    }
    t.threads.push_back(std::move(ops));
  }
  // Condition: a conjunction over up to two load observations plus
  // (sometimes) a final-memory clause.
  struct Clause {
    bool is_mem;
    std::size_t a, b;
    std::int64_t v;
  };
  std::vector<Clause> clauses;
  const std::size_t n_clauses = 1 + rng.next_below(2);
  for (std::size_t c = 0; c < n_clauses; ++c) {
    if (!load_sites.empty() && rng.next_bool(0.7)) {
      const auto [th, i] = load_sites[rng.next_below(load_sites.size())];
      clauses.push_back({false, th, i,
                         static_cast<std::int64_t>(rng.next_below(3))});
    } else {
      clauses.push_back({true, rng.next_below(2), 0,
                         static_cast<std::int64_t>(rng.next_below(3))});
    }
  }
  t.condition = [clauses](const FinalState& s) {
    for (const Clause& c : clauses) {
      if (c.is_mem) {
        if (s.mem[c.a] != c.v) return false;
      } else {
        if (s.regs[c.a][c.b] != c.v) return false;
      }
    }
    return true;
  };
  return t;
}

}  // namespace

TEST(LitmusFuzz, EnginesAgreeAndHierarchyHoldsOnRandomPrograms) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    const LitmusTest t = random_litmus(rng);
    const CheckResult sc_op = check_operational(t, Model::kSc);
    const CheckResult tso_op = check_operational(t, Model::kTso);
    const CheckResult pso_op = check_operational(t, Model::kPso);
    const CheckResult sc_ax = check_axiomatic(t, Model::kSc);
    const CheckResult tso_ax = check_axiomatic(t, Model::kTso);
    const CheckResult pso_ax = check_axiomatic(t, Model::kPso);

    ASSERT_EQ(sc_op.condition_reachable, sc_ax.condition_reachable)
        << "SC engines disagree on trial " << trial;
    ASSERT_EQ(tso_op.condition_reachable, tso_ax.condition_reachable)
        << "TSO engines disagree on trial " << trial;
    ASSERT_EQ(pso_op.condition_reachable, pso_ax.condition_reachable)
        << "PSO engines disagree on trial " << trial;
    if (sc_op.condition_reachable) {
      ASSERT_TRUE(tso_op.condition_reachable)
          << "SC-allowed but TSO-forbidden on trial " << trial;
    }
    if (tso_op.condition_reachable) {
      ASSERT_TRUE(pso_op.condition_reachable)
          << "TSO-allowed but PSO-forbidden on trial " << trial;
    }
  }
}

TEST(LitmusFuzz, FenceSynthesisRepairsRandomStoreLoadPrograms) {
  // Unbiased random programs almost never land in the weak-only region
  // (0/300 in a pilot), so this fuzz is structured: SB-family programs
  // with randomized locations, values, extra ops, and thread count.
  // Whenever the outcome is model-allowed but SC-forbidden, fences must
  // be able to repair it.
  Rng rng(0xBEEF);
  int repaired = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LitmusTest t;
    t.name = "fuzz-sb";
    t.num_locs = 2;
    const int nthreads = 2;
    std::vector<std::pair<std::size_t, std::size_t>> loads;
    for (int th = 0; th < nthreads; ++th) {
      const int mine = th % 2;
      const int other = 1 - mine;
      std::vector<Op> ops;
      ops.push_back(Op::store(mine, 1 + static_cast<int>(
                                        rng.next_below(2))));
      if (rng.next_bool(0.4)) {
        ops.push_back(Op::store(mine, 2));  // extra same-loc store
      }
      loads.emplace_back(static_cast<std::size_t>(th), ops.size());
      ops.push_back(Op::load(other));
      t.threads.push_back(std::move(ops));
    }
    t.condition = [loads](const FinalState& s) {
      for (const auto& [th, i] : loads) {
        if (s.regs[th][i] != 0) return false;  // both loads stale
      }
      return true;
    };
    for (Model m : {Model::kTso, Model::kPso}) {
      if (!check_operational(t, m).condition_reachable) continue;
      if (check_operational(t, Model::kSc).condition_reachable) continue;
      const FenceSynthesisResult r = synthesize_fences(t, m);
      ASSERT_FALSE(r.minimal_sets.empty())
          << "unrepairable weak outcome at trial " << trial;
      // Every returned set must actually work when re-checked.
      ++repaired;
    }
  }
  EXPECT_GT(repaired, 40);  // the structured generator hits the region
}

TEST(Litmus, AxiomaticCountsCandidates) {
  const CheckResult r = check_axiomatic(store_buffering(), Model::kTso);
  // 2 loads x (1 store + init) each = 4 rf candidates; 1 co perm per loc.
  EXPECT_EQ(r.executions_explored, 4u);
  EXPECT_GT(r.states_visited, 0u);  // at least one consistent execution
}

}  // namespace
}  // namespace harmony::memmodel
