// Tests for the technology model and the mesh network (src/noc) —
// including the paper's headline ratios as pinned constants.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "noc/tech.hpp"

namespace harmony::noc {
namespace {

TEST(Tech, PaperConstantsAsPublished) {
  const TechnologyModel t = TechnologyModel::n5();
  // "an add costs about 0.5fJ/bit and a 32-bit add takes about 200ps"
  EXPECT_DOUBLE_EQ(t.op_energy(32).femtojoules(), 16.0);
  EXPECT_DOUBLE_EQ(t.op_delay(32).picoseconds(), 200.0);
  // "on-chip communication costs 80fJ/bit-mm and 1mm takes about 800ps"
  EXPECT_DOUBLE_EQ(
      t.move_energy(1, Length::millimetres(1.0)).femtojoules(), 80.0);
  EXPECT_DOUBLE_EQ(t.move_delay(Length::millimetres(1.0)).picoseconds(),
                   800.0);
}

TEST(Tech, HeadlineRatio160xPerMm) {
  const TechnologyModel t = TechnologyModel::n5();
  // "Transporting the result of an add 1mm costs 160x as much as
  //  performing the add."
  EXPECT_DOUBLE_EQ(t.ratio_move_over_add(Length::millimetres(1.0)), 160.0);
}

TEST(Tech, HeadlineRatioAcross800mm2Die) {
  const TechnologyModel t = TechnologyModel::n5();
  // "Sending it across the diagonal of an 800mm2 GPU costs 4500x."
  // (sqrt(800) mm = 28.28 mm; 160 * 28.28 = 4525.)
  const double r = t.ratio_move_over_add(t.die.side());
  EXPECT_NEAR(r, 4500.0, 50.0);
}

TEST(Tech, HeadlineRatioOffChip) {
  const TechnologyModel t = TechnologyModel::n5();
  // "the off-chip access is 50,000x more expensive" (order of magnitude
  // above the die crossing: 10 * 4525 = 45,254).
  const double r = t.ratio_offchip_over_add();
  EXPECT_GT(r, 40000.0);
  EXPECT_LT(r, 55000.0);
}

TEST(Tech, InstructionOverheadFactor) {
  const TechnologyModel t = TechnologyModel::n5();
  // "The energy overhead of an ADD instruction is 10,000x times more
  //  than the energy required to do the add."
  EXPECT_DOUBLE_EQ(t.cpu_instruction_energy(32) / t.op_energy(32), 10000.0);
}

TEST(Tech, OpDelayScalesGentlyWithWidth) {
  const TechnologyModel t = TechnologyModel::n5();
  EXPECT_LT(t.op_delay(8).picoseconds(), 200.0);
  EXPECT_GT(t.op_delay(64).picoseconds(), 200.0);
  EXPECT_LT(t.op_delay(64).picoseconds(), 300.0);  // log, not linear
}

TEST(Geometry, IndexCoordRoundTrip) {
  GridGeometry g(5, 3, Length::millimetres(0.2));
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(static_cast<int>(g.index(g.coord(static_cast<std::size_t>(i)))),
              i);
  }
  EXPECT_FALSE(g.contains({5, 0}));
  EXPECT_FALSE(g.contains({0, 3}));
  EXPECT_FALSE(g.contains({-1, 0}));
}

TEST(Geometry, ManhattanDistances) {
  GridGeometry g(8, 8, Length::millimetres(0.5));
  EXPECT_EQ(g.hops({0, 0}, {3, 4}), 7);
  EXPECT_DOUBLE_EQ(g.distance({0, 0}, {3, 4}).millimetres(), 3.5);
  EXPECT_EQ(g.hops({2, 2}, {2, 2}), 0);
}

TEST(Geometry, TransferCostsMatchTech) {
  GridGeometry g(8, 8, Length::millimetres(1.0));
  // 32 bits over 1 hop of 1mm: 32 * 80 fJ.
  EXPECT_DOUBLE_EQ(g.transfer_energy(32, {0, 0}, {1, 0}).femtojoules(),
                   32.0 * 80.0);
  EXPECT_DOUBLE_EQ(g.transfer_latency({0, 0}, {1, 0}).picoseconds(), 800.0);
  EXPECT_DOUBLE_EQ(g.transfer_energy(32, {2, 2}, {2, 2}).femtojoules(), 0.0);
}

TEST(Geometry, DramCostsIncludeOffchipPenalty) {
  GridGeometry g(8, 8, Length::millimetres(0.2));
  const Energy near = g.dram_access_energy(32, {0, 0});
  const Energy far = g.dram_access_energy(32, {7, 0});
  EXPECT_GT(far.femtojoules(), near.femtojoules());
  // Both dominated by the off-chip term.
  EXPECT_GT(near / g.tech().op_energy(32), 10000.0);
  EXPECT_GT(g.dram_access_latency(32, {0, 0}).picoseconds(), 20000.0);
}

TEST(Torus, WrapShortensLongAxes) {
  GridGeometry mesh(8, 1, Length::millimetres(0.2));
  GridGeometry torus(8, 1, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(mesh.hops({0, 0}, {7, 0}), 7);
  EXPECT_EQ(torus.hops({0, 0}, {7, 0}), 1);  // wrap
  EXPECT_EQ(torus.hops({0, 0}, {4, 0}), 4);  // tie goes forward
  EXPECT_EQ(torus.hops({0, 0}, {5, 0}), 3);  // backward shorter
  EXPECT_EQ(torus.hops({2, 0}, {2, 0}), 0);
}

TEST(Torus, NextHopWalksTheWrapRoute) {
  GridGeometry torus(6, 6, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  // 0 -> 5 should go west through the wrap (1 hop).
  EXPECT_EQ(torus.next_hop({0, 0}, {5, 0}), (Coord{5, 0}));
  // Walk any pair fully: step count must equal hops().
  for (int sx = 0; sx < 6; ++sx) {
    for (int dx = 0; dx < 6; ++dx) {
      for (int dy = 0; dy < 6; ++dy) {
        Coord at{sx, 0};
        const Coord dst{dx, dy};
        int steps = 0;
        while (!(at == dst)) {
          at = torus.next_hop(at, dst);
          ++steps;
          ASSERT_LE(steps, 12);
        }
        ASSERT_EQ(steps, torus.hops({sx, 0}, dst))
            << sx << "->" << dx << "," << dy;
      }
    }
  }
}

TEST(Torus, MeshNextHopMatchesHopsToo) {
  GridGeometry mesh(5, 4, Length::millimetres(0.2));
  for (int s = 0; s < mesh.num_nodes(); ++s) {
    for (int d = 0; d < mesh.num_nodes(); ++d) {
      Coord at = mesh.coord(static_cast<std::size_t>(s));
      const Coord dst = mesh.coord(static_cast<std::size_t>(d));
      int steps = 0;
      while (!(at == dst)) {
        at = mesh.next_hop(at, dst);
        ++steps;
        ASSERT_LE(steps, 16);
      }
      ASSERT_EQ(steps, mesh.hops(mesh.coord(static_cast<std::size_t>(s)),
                                 dst));
    }
  }
}

TEST(Topology, DiameterAndBisection) {
  GridGeometry mesh(8, 8, Length::millimetres(0.2));
  GridGeometry torus(8, 8, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(mesh.diameter_hops(), 14);
  EXPECT_EQ(torus.diameter_hops(), 8);
  EXPECT_EQ(mesh.bisection_links(), 16);
  EXPECT_EQ(torus.bisection_links(), 32);
  // Diameter is an upper bound on every routed distance.
  for (int s = 0; s < mesh.num_nodes(); s += 7) {
    for (int d = 0; d < mesh.num_nodes(); d += 5) {
      const Coord a = mesh.coord(static_cast<std::size_t>(s));
      const Coord b = mesh.coord(static_cast<std::size_t>(d));
      EXPECT_LE(mesh.hops(a, b), mesh.diameter_hops());
      EXPECT_LE(torus.hops(a, b), torus.diameter_hops());
    }
  }
}

TEST(Torus, NetworkDeliversOverWrapLink) {
  GridGeometry torus(8, 1, Length::millimetres(1.0),
                     TechnologyModel::n5(), Topology::kTorus);
  MeshNetwork net(torus, 1.0);
  const auto d = net.send({0, 0}, {7, 0}, 64, Time::zero());
  EXPECT_EQ(d.hops, 1);
  EXPECT_DOUBLE_EQ(d.energy.femtojoules(), 64.0 * 80.0);
}

TEST(Mesh, UncontendedDeliveryTimeIsSerializationPlusWire) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g, /*link_bits_per_ps=*/1.0);
  const auto d = net.send({0, 0}, {2, 0}, 64, Time::zero());
  EXPECT_EQ(d.hops, 2);
  // Store-and-forward: 2 hops x (64 bits / 1 bit/ps + 800 ps wire).
  EXPECT_DOUBLE_EQ(d.arrival.picoseconds(), 2.0 * (64.0 + 800.0));
  EXPECT_DOUBLE_EQ(d.energy.femtojoules(), 64.0 * 80.0 * 2.0);
}

TEST(Mesh, XYRoutingHopCount) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g);
  EXPECT_EQ(net.send({0, 0}, {3, 3}, 8, Time::zero()).hops, 6);
  EXPECT_EQ(net.send({3, 3}, {0, 0}, 8, Time::zero()).hops, 6);
  EXPECT_EQ(net.send({1, 1}, {1, 1}, 8, Time::zero()).hops, 0);
}

TEST(Mesh, ContentionSerializesSharedLink) {
  GridGeometry g(4, 1, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  // Two messages cross link (0,0)->(1,0) at the same instant.
  const auto first = net.send({0, 0}, {1, 0}, 100, Time::zero());
  const auto second = net.send({0, 0}, {1, 0}, 100, Time::zero());
  EXPECT_DOUBLE_EQ(first.arrival.picoseconds(), 100.0 + 800.0);
  EXPECT_DOUBLE_EQ(second.arrival.picoseconds(), 2.0 * (100.0 + 800.0));
  EXPECT_EQ(net.max_link_bits(), 200u);
  EXPECT_DOUBLE_EQ(net.drain_time().picoseconds(),
                   second.arrival.picoseconds());
}

TEST(Mesh, DisjointPathsDoNotInterfere) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  const auto a = net.send({0, 0}, {1, 0}, 100, Time::zero());
  const auto b = net.send({0, 1}, {1, 1}, 100, Time::zero());
  EXPECT_DOUBLE_EQ(a.arrival.picoseconds(), b.arrival.picoseconds());
}

TEST(Mesh, StatsAccumulate) {
  GridGeometry g(4, 4, Length::millimetres(0.5));
  MeshNetwork net(g);
  net.send({0, 0}, {3, 0}, 32, Time::zero());
  net.send({0, 0}, {0, 3}, 32, Time::zero());
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.total_bit_hops(), 32u * 6u);
  EXPECT_GT(net.total_energy().femtojoules(), 0.0);
}

TEST(Mesh, RejectsOffGridEndpoints) {
  GridGeometry g(2, 2, Length::millimetres(0.5));
  MeshNetwork net(g);
  EXPECT_THROW(net.send({0, 0}, {5, 0}, 8, Time::zero()), InvalidArgument);
}

// --- Direction-decoding regressions ---------------------------------
// The old decoder compared coordinates modularly: on 1-column grids the
// east test was vacuously true (y-hops charged to east links), on
// 2-column / 2-row grids the +1 and -1 tests were both true (west
// decoded as east, south as north).  These pin the fix.

TEST(LinkDecodeRegression, SingleColumnYTrafficUsesNorthSouthLinks) {
  GridGeometry g(1, 4, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  const auto up = net.send({0, 0}, {0, 3}, 100, Time::zero());
  const auto down = net.send({0, 3}, {0, 0}, 100, Time::zero());
  // Opposing traffic rides disjoint directed links, so neither message
  // waits.  Pre-fix, both directions were charged to each node's east
  // link and the second message serialized behind the first at the two
  // shared interior nodes.
  EXPECT_DOUBLE_EQ(up.arrival.picoseconds(), 3.0 * (100.0 + 800.0));
  EXPECT_DOUBLE_EQ(down.arrival.picoseconds(), up.arrival.picoseconds());
  // Attribution: every hop on the correct link, nothing on east/west.
  for (int y = 0; y < 3; ++y) {
    EXPECT_EQ(net.link_bits({0, y}, MeshNetwork::kNorth), 100u) << y;
    EXPECT_EQ(net.link_bits({0, y + 1}, MeshNetwork::kSouth), 100u) << y;
  }
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(net.link_bits({0, y}, MeshNetwork::kEast), 0u) << y;
    EXPECT_EQ(net.link_bits({0, y}, MeshNetwork::kWest), 0u) << y;
  }
}

TEST(LinkDecodeRegression, TwoColumnWestHopUsesWestLink) {
  for (const Topology topo : {Topology::kMesh, Topology::kTorus}) {
    GridGeometry g(2, 2, Length::millimetres(1.0), TechnologyModel::n5(),
                   topo);
    MeshNetwork net(g, 1.0);
    net.send({1, 0}, {0, 0}, 64, Time::zero());
    // Pre-fix, (x=1 -> x=0) satisfied the east test on a 2-column grid
    // ((1+1)%2 == 0) and was charged to node (1,0)'s east link.
    EXPECT_EQ(net.link_bits({1, 0}, MeshNetwork::kWest), 64u);
    EXPECT_EQ(net.link_bits({1, 0}, MeshNetwork::kEast), 0u);
  }
}

TEST(LinkDecodeRegression, TwoRowSouthHopUsesSouthLink) {
  GridGeometry g(2, 2, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  net.send({0, 1}, {0, 0}, 64, Time::zero());
  // Pre-fix, (y=1 -> y=0) satisfied the north test ((1+1)%2 == 0).
  EXPECT_EQ(net.link_bits({0, 1}, MeshNetwork::kSouth), 64u);
  EXPECT_EQ(net.link_bits({0, 1}, MeshNetwork::kNorth), 0u);
}

TEST(LinkDecodeRegression, TorusWrapHopsChargeTheWrapLink) {
  GridGeometry g(1, 4, Length::millimetres(1.0), TechnologyModel::n5(),
                 Topology::kTorus);
  MeshNetwork net(g, 1.0);
  // y = 3 -> y = 0 wraps north off the top edge (one hop).
  const auto d = net.send({0, 3}, {0, 0}, 64, Time::zero());
  EXPECT_EQ(d.hops, 1);
  EXPECT_EQ(net.link_bits({0, 3}, MeshNetwork::kNorth), 64u);
  EXPECT_EQ(net.link_bits({0, 3}, MeshNetwork::kEast), 0u);
  // y = 0 -> y = 3 wraps south off the bottom edge.
  net.send({0, 0}, {0, 3}, 32, Time::zero());
  EXPECT_EQ(net.link_bits({0, 0}, MeshNetwork::kSouth), 32u);
}

// --- axis_delta tie regression --------------------------------------

TEST(Torus, HalfwayTiesRouteTheIncreasingWayFromBothEnds) {
  // Extent 4, delta +/-2: both ways around are 2 hops.  The documented
  // rule is "ties go the increasing way"; pre-fix the decreasing
  // operand order returned the decreasing route, so a->b and b->a used
  // different physical links.
  GridGeometry torus(4, 1, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(torus.hops({0, 0}, {2, 0}), 2);
  EXPECT_EQ(torus.hops({2, 0}, {0, 0}), 2);
  // 0 -> 2: increasing, via x = 1.
  EXPECT_EQ(torus.next_hop({0, 0}, {2, 0}), (Coord{1, 0}));
  // 2 -> 0: still increasing (via x = 3 and the wrap), not back via 1.
  EXPECT_EQ(torus.next_hop({2, 0}, {0, 0}), (Coord{3, 0}));
  // Same rule on the y axis.
  GridGeometry tall(1, 4, Length::millimetres(0.2),
                    TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(tall.next_hop({0, 2}, {0, 0}), (Coord{0, 3}));
}

// --- Degenerate grids -----------------------------------------------

TEST(DegenerateGrid, SingleNodeGridIsClosedUnderEverything) {
  for (const Topology topo : {Topology::kMesh, Topology::kTorus}) {
    GridGeometry g(1, 1, Length::millimetres(0.5), TechnologyModel::n5(),
                   topo);
    EXPECT_EQ(g.num_nodes(), 1);
    EXPECT_EQ(g.hops({0, 0}, {0, 0}), 0);
    EXPECT_EQ(g.diameter_hops(), 0);
    MeshNetwork net(g, 1.0);
    const auto d = net.send({0, 0}, {0, 0}, 128, Time::picoseconds(5.0));
    EXPECT_EQ(d.hops, 0);
    EXPECT_DOUBLE_EQ(d.arrival.picoseconds(), 5.0);  // self-send is free
    EXPECT_DOUBLE_EQ(net.drain_time().picoseconds(), 0.0);
    EXPECT_EQ(net.max_link_bits(), 0u);
  }
}

TEST(DegenerateGrid, OneColumnMeshAndTorusGeometry) {
  GridGeometry mesh(1, 5, Length::millimetres(0.5));
  EXPECT_EQ(mesh.diameter_hops(), 4);
  GridGeometry torus(1, 4, Length::millimetres(0.5), TechnologyModel::n5(),
                     Topology::kTorus);
  EXPECT_EQ(torus.diameter_hops(), 2);
  // next_hop walks agree with hops() on every pair of both grids.
  for (const GridGeometry* g : {&mesh, &torus}) {
    for (int s = 0; s < g->num_nodes(); ++s) {
      for (int d = 0; d < g->num_nodes(); ++d) {
        Coord at = g->coord(static_cast<std::size_t>(s));
        const Coord dst = g->coord(static_cast<std::size_t>(d));
        int steps = 0;
        while (!(at == dst)) {
          at = g->next_hop(at, dst);
          ++steps;
          ASSERT_LE(steps, g->num_nodes());
        }
        ASSERT_EQ(steps, g->hops(g->coord(static_cast<std::size_t>(s)), dst));
      }
    }
  }
}

TEST(DegenerateGrid, OneColumnNetworkDrainAndHotSpot) {
  GridGeometry g(1, 4, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  const auto d = net.send({0, 0}, {0, 3}, 100, Time::zero());
  EXPECT_EQ(d.hops, 3);
  // Three distinct links each carried the message once.
  EXPECT_EQ(net.max_link_bits(), 100u);
  EXPECT_DOUBLE_EQ(net.drain_time().picoseconds(),
                   d.arrival.picoseconds());
  EXPECT_EQ(net.total_bit_hops(), 300u);
}

TEST(DegenerateGrid, TwoByTwoTorusBehavesLikeAMesh) {
  // With both extents 2, every wrap link duplicates a neighbour link;
  // the router treats extent <= 2 as mesh-like, so hops and routes
  // match the 2x2 mesh exactly.
  GridGeometry torus(2, 2, Length::millimetres(0.5), TechnologyModel::n5(),
                     Topology::kTorus);
  GridGeometry mesh(2, 2, Length::millimetres(0.5));
  EXPECT_EQ(torus.diameter_hops(), 2);
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      const Coord a = torus.coord(static_cast<std::size_t>(s));
      const Coord b = torus.coord(static_cast<std::size_t>(d));
      EXPECT_EQ(torus.hops(a, b), mesh.hops(a, b));
      if (!(a == b)) EXPECT_EQ(torus.next_hop(a, b), mesh.next_hop(a, b));
    }
  }
  // X resolves before Y (dimension order).
  EXPECT_EQ(torus.next_hop({0, 0}, {1, 1}), (Coord{1, 0}));
  MeshNetwork net(torus, 1.0);
  const auto d = net.send({0, 0}, {1, 1}, 64, Time::zero());
  EXPECT_EQ(d.hops, 2);
  EXPECT_DOUBLE_EQ(net.drain_time().picoseconds(), d.arrival.picoseconds());
  EXPECT_EQ(net.max_link_bits(), 64u);
}

}  // namespace
}  // namespace harmony::noc
