// Tests for the technology model and the mesh network (src/noc) —
// including the paper's headline ratios as pinned constants.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "noc/tech.hpp"

namespace harmony::noc {
namespace {

TEST(Tech, PaperConstantsAsPublished) {
  const TechnologyModel t = TechnologyModel::n5();
  // "an add costs about 0.5fJ/bit and a 32-bit add takes about 200ps"
  EXPECT_DOUBLE_EQ(t.op_energy(32).femtojoules(), 16.0);
  EXPECT_DOUBLE_EQ(t.op_delay(32).picoseconds(), 200.0);
  // "on-chip communication costs 80fJ/bit-mm and 1mm takes about 800ps"
  EXPECT_DOUBLE_EQ(
      t.move_energy(1, Length::millimetres(1.0)).femtojoules(), 80.0);
  EXPECT_DOUBLE_EQ(t.move_delay(Length::millimetres(1.0)).picoseconds(),
                   800.0);
}

TEST(Tech, HeadlineRatio160xPerMm) {
  const TechnologyModel t = TechnologyModel::n5();
  // "Transporting the result of an add 1mm costs 160x as much as
  //  performing the add."
  EXPECT_DOUBLE_EQ(t.ratio_move_over_add(Length::millimetres(1.0)), 160.0);
}

TEST(Tech, HeadlineRatioAcross800mm2Die) {
  const TechnologyModel t = TechnologyModel::n5();
  // "Sending it across the diagonal of an 800mm2 GPU costs 4500x."
  // (sqrt(800) mm = 28.28 mm; 160 * 28.28 = 4525.)
  const double r = t.ratio_move_over_add(t.die.side());
  EXPECT_NEAR(r, 4500.0, 50.0);
}

TEST(Tech, HeadlineRatioOffChip) {
  const TechnologyModel t = TechnologyModel::n5();
  // "the off-chip access is 50,000x more expensive" (order of magnitude
  // above the die crossing: 10 * 4525 = 45,254).
  const double r = t.ratio_offchip_over_add();
  EXPECT_GT(r, 40000.0);
  EXPECT_LT(r, 55000.0);
}

TEST(Tech, InstructionOverheadFactor) {
  const TechnologyModel t = TechnologyModel::n5();
  // "The energy overhead of an ADD instruction is 10,000x times more
  //  than the energy required to do the add."
  EXPECT_DOUBLE_EQ(t.cpu_instruction_energy(32) / t.op_energy(32), 10000.0);
}

TEST(Tech, OpDelayScalesGentlyWithWidth) {
  const TechnologyModel t = TechnologyModel::n5();
  EXPECT_LT(t.op_delay(8).picoseconds(), 200.0);
  EXPECT_GT(t.op_delay(64).picoseconds(), 200.0);
  EXPECT_LT(t.op_delay(64).picoseconds(), 300.0);  // log, not linear
}

TEST(Geometry, IndexCoordRoundTrip) {
  GridGeometry g(5, 3, Length::millimetres(0.2));
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(static_cast<int>(g.index(g.coord(static_cast<std::size_t>(i)))),
              i);
  }
  EXPECT_FALSE(g.contains({5, 0}));
  EXPECT_FALSE(g.contains({0, 3}));
  EXPECT_FALSE(g.contains({-1, 0}));
}

TEST(Geometry, ManhattanDistances) {
  GridGeometry g(8, 8, Length::millimetres(0.5));
  EXPECT_EQ(g.hops({0, 0}, {3, 4}), 7);
  EXPECT_DOUBLE_EQ(g.distance({0, 0}, {3, 4}).millimetres(), 3.5);
  EXPECT_EQ(g.hops({2, 2}, {2, 2}), 0);
}

TEST(Geometry, TransferCostsMatchTech) {
  GridGeometry g(8, 8, Length::millimetres(1.0));
  // 32 bits over 1 hop of 1mm: 32 * 80 fJ.
  EXPECT_DOUBLE_EQ(g.transfer_energy(32, {0, 0}, {1, 0}).femtojoules(),
                   32.0 * 80.0);
  EXPECT_DOUBLE_EQ(g.transfer_latency({0, 0}, {1, 0}).picoseconds(), 800.0);
  EXPECT_DOUBLE_EQ(g.transfer_energy(32, {2, 2}, {2, 2}).femtojoules(), 0.0);
}

TEST(Geometry, DramCostsIncludeOffchipPenalty) {
  GridGeometry g(8, 8, Length::millimetres(0.2));
  const Energy near = g.dram_access_energy(32, {0, 0});
  const Energy far = g.dram_access_energy(32, {7, 0});
  EXPECT_GT(far.femtojoules(), near.femtojoules());
  // Both dominated by the off-chip term.
  EXPECT_GT(near / g.tech().op_energy(32), 10000.0);
  EXPECT_GT(g.dram_access_latency(32, {0, 0}).picoseconds(), 20000.0);
}

TEST(Torus, WrapShortensLongAxes) {
  GridGeometry mesh(8, 1, Length::millimetres(0.2));
  GridGeometry torus(8, 1, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(mesh.hops({0, 0}, {7, 0}), 7);
  EXPECT_EQ(torus.hops({0, 0}, {7, 0}), 1);  // wrap
  EXPECT_EQ(torus.hops({0, 0}, {4, 0}), 4);  // tie goes forward
  EXPECT_EQ(torus.hops({0, 0}, {5, 0}), 3);  // backward shorter
  EXPECT_EQ(torus.hops({2, 0}, {2, 0}), 0);
}

TEST(Torus, NextHopWalksTheWrapRoute) {
  GridGeometry torus(6, 6, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  // 0 -> 5 should go west through the wrap (1 hop).
  EXPECT_EQ(torus.next_hop({0, 0}, {5, 0}), (Coord{5, 0}));
  // Walk any pair fully: step count must equal hops().
  for (int sx = 0; sx < 6; ++sx) {
    for (int dx = 0; dx < 6; ++dx) {
      for (int dy = 0; dy < 6; ++dy) {
        Coord at{sx, 0};
        const Coord dst{dx, dy};
        int steps = 0;
        while (!(at == dst)) {
          at = torus.next_hop(at, dst);
          ++steps;
          ASSERT_LE(steps, 12);
        }
        ASSERT_EQ(steps, torus.hops({sx, 0}, dst))
            << sx << "->" << dx << "," << dy;
      }
    }
  }
}

TEST(Torus, MeshNextHopMatchesHopsToo) {
  GridGeometry mesh(5, 4, Length::millimetres(0.2));
  for (int s = 0; s < mesh.num_nodes(); ++s) {
    for (int d = 0; d < mesh.num_nodes(); ++d) {
      Coord at = mesh.coord(static_cast<std::size_t>(s));
      const Coord dst = mesh.coord(static_cast<std::size_t>(d));
      int steps = 0;
      while (!(at == dst)) {
        at = mesh.next_hop(at, dst);
        ++steps;
        ASSERT_LE(steps, 16);
      }
      ASSERT_EQ(steps, mesh.hops(mesh.coord(static_cast<std::size_t>(s)),
                                 dst));
    }
  }
}

TEST(Topology, DiameterAndBisection) {
  GridGeometry mesh(8, 8, Length::millimetres(0.2));
  GridGeometry torus(8, 8, Length::millimetres(0.2),
                     TechnologyModel::n5(), Topology::kTorus);
  EXPECT_EQ(mesh.diameter_hops(), 14);
  EXPECT_EQ(torus.diameter_hops(), 8);
  EXPECT_EQ(mesh.bisection_links(), 16);
  EXPECT_EQ(torus.bisection_links(), 32);
  // Diameter is an upper bound on every routed distance.
  for (int s = 0; s < mesh.num_nodes(); s += 7) {
    for (int d = 0; d < mesh.num_nodes(); d += 5) {
      const Coord a = mesh.coord(static_cast<std::size_t>(s));
      const Coord b = mesh.coord(static_cast<std::size_t>(d));
      EXPECT_LE(mesh.hops(a, b), mesh.diameter_hops());
      EXPECT_LE(torus.hops(a, b), torus.diameter_hops());
    }
  }
}

TEST(Torus, NetworkDeliversOverWrapLink) {
  GridGeometry torus(8, 1, Length::millimetres(1.0),
                     TechnologyModel::n5(), Topology::kTorus);
  MeshNetwork net(torus, 1.0);
  const auto d = net.send({0, 0}, {7, 0}, 64, Time::zero());
  EXPECT_EQ(d.hops, 1);
  EXPECT_DOUBLE_EQ(d.energy.femtojoules(), 64.0 * 80.0);
}

TEST(Mesh, UncontendedDeliveryTimeIsSerializationPlusWire) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g, /*link_bits_per_ps=*/1.0);
  const auto d = net.send({0, 0}, {2, 0}, 64, Time::zero());
  EXPECT_EQ(d.hops, 2);
  // Store-and-forward: 2 hops x (64 bits / 1 bit/ps + 800 ps wire).
  EXPECT_DOUBLE_EQ(d.arrival.picoseconds(), 2.0 * (64.0 + 800.0));
  EXPECT_DOUBLE_EQ(d.energy.femtojoules(), 64.0 * 80.0 * 2.0);
}

TEST(Mesh, XYRoutingHopCount) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g);
  EXPECT_EQ(net.send({0, 0}, {3, 3}, 8, Time::zero()).hops, 6);
  EXPECT_EQ(net.send({3, 3}, {0, 0}, 8, Time::zero()).hops, 6);
  EXPECT_EQ(net.send({1, 1}, {1, 1}, 8, Time::zero()).hops, 0);
}

TEST(Mesh, ContentionSerializesSharedLink) {
  GridGeometry g(4, 1, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  // Two messages cross link (0,0)->(1,0) at the same instant.
  const auto first = net.send({0, 0}, {1, 0}, 100, Time::zero());
  const auto second = net.send({0, 0}, {1, 0}, 100, Time::zero());
  EXPECT_DOUBLE_EQ(first.arrival.picoseconds(), 100.0 + 800.0);
  EXPECT_DOUBLE_EQ(second.arrival.picoseconds(), 2.0 * (100.0 + 800.0));
  EXPECT_EQ(net.max_link_bits(), 200u);
  EXPECT_DOUBLE_EQ(net.drain_time().picoseconds(),
                   second.arrival.picoseconds());
}

TEST(Mesh, DisjointPathsDoNotInterfere) {
  GridGeometry g(4, 4, Length::millimetres(1.0));
  MeshNetwork net(g, 1.0);
  const auto a = net.send({0, 0}, {1, 0}, 100, Time::zero());
  const auto b = net.send({0, 1}, {1, 1}, 100, Time::zero());
  EXPECT_DOUBLE_EQ(a.arrival.picoseconds(), b.arrival.picoseconds());
}

TEST(Mesh, StatsAccumulate) {
  GridGeometry g(4, 4, Length::millimetres(0.5));
  MeshNetwork net(g);
  net.send({0, 0}, {3, 0}, 32, Time::zero());
  net.send({0, 0}, {0, 3}, 32, Time::zero());
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.total_bit_hops(), 32u * 6u);
  EXPECT_GT(net.total_energy().femtojoules(), 0.0);
}

TEST(Mesh, RejectsOffGridEndpoints) {
  GridGeometry g(2, 2, Length::millimetres(0.5));
  MeshNetwork net(g);
  EXPECT_THROW(net.send({0, 0}, {5, 0}, 8, Time::zero()), InvalidArgument);
}

}  // namespace
}  // namespace harmony::noc
