// Tests for the PRAM simulator and the XMT spawn/ps machine (src/pram).
#include <gtest/gtest.h>

#include "algos/pram_scan.hpp"
#include "pram/pram.hpp"
#include "pram/xmt.hpp"

namespace harmony::pram {
namespace {

TEST(Pram, StepSynchronousWriteVisibility) {
  // Two processors swap two cells: reads must see the step-start state.
  PramMachine m(Variant::kErew, 2, 2);
  m.mem(0) = 10;
  m.mem(1) = 20;
  m.run([](PramMachine::Ctx& ctx) {
    const std::size_t src = ctx.proc();
    const std::size_t dst = 1 - ctx.proc();
    const std::int64_t v = ctx.read(src);
    ctx.write(dst, v);
    ctx.halt();
  });
  EXPECT_EQ(m.mem(0), 20);
  EXPECT_EQ(m.mem(1), 10);
}

TEST(Pram, ErewDetectsConcurrentRead) {
  PramMachine m(Variant::kErew, 2, 2);
  EXPECT_THROW(m.run([](PramMachine::Ctx& ctx) {
    (void)ctx.read(0);  // both processors read address 0
    ctx.halt();
  }),
               SimulationError);
}

TEST(Pram, CrewAllowsConcurrentReadRejectsConcurrentWrite) {
  PramMachine ok(Variant::kCrew, 4, 2);
  EXPECT_NO_THROW(ok.run([](PramMachine::Ctx& ctx) {
    (void)ctx.read(0);
    ctx.halt();
  }));
  PramMachine bad(Variant::kCrew, 2, 2);
  EXPECT_THROW(bad.run([](PramMachine::Ctx& ctx) {
    ctx.write(0, static_cast<std::int64_t>(ctx.proc()));
    ctx.halt();
  }),
               SimulationError);
}

TEST(Pram, CrcwCommonRequiresAgreement) {
  PramMachine ok(Variant::kCrcwCommon, 4, 1);
  EXPECT_NO_THROW(ok.run([](PramMachine::Ctx& ctx) {
    ctx.write(0, 7);
    ctx.halt();
  }));
  EXPECT_EQ(ok.mem(0), 7);
  PramMachine bad(Variant::kCrcwCommon, 2, 1);
  EXPECT_THROW(bad.run([](PramMachine::Ctx& ctx) {
    ctx.write(0, static_cast<std::int64_t>(ctx.proc()));
    ctx.halt();
  }),
               SimulationError);
}

TEST(Pram, CrcwPriorityLowestIdWins) {
  PramMachine m(Variant::kCrcwPriority, 4, 1);
  m.run([](PramMachine::Ctx& ctx) {
    ctx.write(0, 100 + static_cast<std::int64_t>(ctx.proc()));
    ctx.halt();
  });
  EXPECT_EQ(m.mem(0), 100);
}

TEST(Pram, SameProcessorRewriteIsAllowed) {
  PramMachine m(Variant::kErew, 1, 1);
  m.run([](PramMachine::Ctx& ctx) {
    ctx.write(0, 1);
    ctx.write(0, 2);
    ctx.halt();
  });
  EXPECT_EQ(m.mem(0), 2);
}

TEST(Pram, WorkAndDepthAccounting) {
  PramMachine m(Variant::kCrew, 4, 8);
  const PramStats st = m.run([](PramMachine::Ctx& ctx) {
    if (ctx.step() >= 3) {
      ctx.halt();
      return;
    }
    (void)ctx.read(ctx.proc());
  });
  EXPECT_EQ(st.steps, 4);       // 3 active rounds + halting round
  EXPECT_EQ(st.work, 16);       // 4 procs x 4 rounds
  EXPECT_EQ(st.reads, 12);      // 4 procs x 3 rounds
}

TEST(Pram, RunawayProgramThrows) {
  PramMachine m(Variant::kCrew, 1, 1);
  EXPECT_THROW(m.run([](PramMachine::Ctx&) { /* never halts */ },
                     /*max_steps=*/100),
               SimulationError);
}

TEST(Pram, OutOfRangeAccessThrows) {
  PramMachine m(Variant::kCrew, 1, 4);
  EXPECT_THROW(m.run([](PramMachine::Ctx& ctx) {
    (void)ctx.read(100);
    ctx.halt();
  }),
               InvalidArgument);
  EXPECT_THROW((void)m.mem(100), InvalidArgument);
}

class PramParallelSum : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PramParallelSum, TreeReductionAcrossProcCounts) {
  const std::size_t p = GetParam();
  const std::size_t n = 64;
  // Memory: [0, n) values (reduced in place, EREW tree).
  PramMachine m(Variant::kErew, p, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.mem(i) = static_cast<std::int64_t>(i + 1);
  }
  m.run([n, p](PramMachine::Ctx& ctx) {
    const auto stride = std::size_t{1} << (ctx.step() + 1);
    if (stride > n) {
      ctx.halt();
      return;
    }
    for (std::size_t i = ctx.proc() * stride; i + stride / 2 < n;
         i += p * stride) {
      const std::int64_t a = ctx.read(i);
      const std::int64_t b = ctx.read(i + stride / 2);
      ctx.write(i, a + b);
    }
  });
  EXPECT_EQ(m.mem(0), static_cast<std::int64_t>(n * (n + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(ProcSweep, PramParallelSum,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// --- work-efficient EREW scan -------------------------------------------

class PramScanSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PramScanSweep, MatchesSerialExclusiveScan) {
  const auto [n, procs] = GetParam();
  std::vector<std::int64_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<std::int64_t>((i * 7 + 3) % 11) - 5;
  }
  std::int64_t acc = 0;
  std::vector<std::int64_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc += in[i];
  }
  const auto res = algos::scan_pram(in, procs);
  EXPECT_EQ(res.out, expect);
  EXPECT_EQ(res.total, acc);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PramScanSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{64},
                                         std::size_t{100},
                                         std::size_t{1024}),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{32})));

TEST(PramScan, IsWorkEfficientAndLogDepth) {
  const std::size_t n = 1024;
  std::vector<std::int64_t> in(n, 1);
  const auto res = algos::scan_pram(in, 64);
  // Depth: 2 log2 n + O(1) synchronous rounds.
  EXPECT_LE(res.rounds, 2 * 10 + 4);
  // Work-efficiency: Theta(n) memory operations, not Theta(n log n).
  EXPECT_LT(res.stats.reads + res.stats.writes, 8 * n);
  // And it ran under EREW discipline without a conflict throw.
}

TEST(PramScan, EmptyAndSingleton) {
  EXPECT_TRUE(algos::scan_pram({}, 4).out.empty());
  const auto one = algos::scan_pram({42}, 4);
  EXPECT_EQ(one.out, (std::vector<std::int64_t>{0}));
  EXPECT_EQ(one.total, 42);
}

// --- XMT ----------------------------------------------------------------

TEST(Xmt, PsIsAtomicFetchAddAcrossThreads) {
  XmtMachine m(8);
  m.mem(0) = 0;
  std::vector<std::int64_t> slots(100, -1);
  m.spawn(100, [&](XmtMachine::Thread& t) {
    const std::int64_t old = t.ps(0, 1);
    slots[static_cast<std::size_t>(t.id())] = old;
  });
  EXPECT_EQ(m.mem(0), 100);
  std::sort(slots.begin(), slots.end());
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i);  // distinct slots
  }
}

TEST(Xmt, WriteRaceDetected) {
  XmtMachine m(4);
  EXPECT_THROW(m.spawn(2, [](XmtMachine::Thread& t) { t.write(0, t.id()); }),
               SimulationError);
}

TEST(Xmt, SameThreadMayRewrite) {
  XmtMachine m(4);
  EXPECT_NO_THROW(m.spawn(1, [](XmtMachine::Thread& t) {
    t.write(0, 1);
    t.write(0, 2);
  }));
  EXPECT_EQ(m.mem(0), 2);
}

TEST(Xmt, RacesResetBetweenSpawns) {
  XmtMachine m(4);
  m.spawn(1, [](XmtMachine::Thread& t) { t.write(0, 1); });
  // A different spawn may write the same address again.
  EXPECT_NO_THROW(m.spawn(1, [](XmtMachine::Thread& t) { t.write(0, 2); }));
}

TEST(Xmt, CostModelThroughputTerm) {
  XmtConfig cfg;
  cfg.num_tcus = 4;
  cfg.spawn_overhead_cycles = 10;
  XmtMachine m(4, cfg);
  const XmtStats st =
      m.spawn(8, [](XmtMachine::Thread& t) { t.charge(5); });
  EXPECT_EQ(st.threads, 8);
  EXPECT_EQ(st.work, 40);
  EXPECT_EQ(st.depth, 5);
  // cycles = overhead + max(ceil(40/4), 5) = 10 + 10.
  EXPECT_EQ(st.estimated_cycles, 20);
}

TEST(Xmt, SoftwarePsPaysContentionPenalty) {
  auto run = [](bool hardware) {
    XmtConfig cfg;
    cfg.num_tcus = 64;
    cfg.hardware_ps = hardware;
    XmtMachine m(4, cfg);
    return m.spawn(64, [](XmtMachine::Thread& t) { t.ps(0, 1); });
  };
  const XmtStats hw = run(true);
  const XmtStats sw = run(false);
  EXPECT_EQ(hw.max_ps_contention, 64);
  EXPECT_EQ(sw.estimated_cycles - hw.estimated_cycles, 63);
}

TEST(Xmt, StatsAccumulateAcrossSpawns) {
  XmtMachine m(4);
  XmtStats total;
  total += m.spawn(4, [](XmtMachine::Thread& t) { t.charge(1); });
  total += m.spawn(2, [](XmtMachine::Thread& t) { t.charge(3); });
  EXPECT_EQ(total.threads, 6);
  EXPECT_EQ(total.work, 10);
  EXPECT_EQ(total.depth, 4);  // sequential composition: 1 + 3
}

}  // namespace
}  // namespace harmony::pram
