// Failure-injection and robustness tests for the scheduler (src/sched):
// exceptions crossing run(), scheduler reuse after failure, oversized
// worker pools, and deep recursion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"
#include "sched/workspan.hpp"

namespace harmony::sched {
namespace {

// Tiny helper so loop bodies are not optimized away.
void benchmark_blackhole(std::size_t v) {
  static std::atomic<std::size_t> sink{0};
  sink.fetch_add(v, std::memory_order_relaxed);
}

TEST(SchedulerRobustness, ExceptionInRootPropagatesAndSchedulerSurvives) {
  Scheduler sched(3);
  EXPECT_THROW(sched.run([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The session must have been torn down cleanly: a fresh run works.
  std::atomic<int> count{0};
  RealCtx ctx;
  sched.run([&] {
    parallel_for(ctx, 0, 1000, 16, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 1000);
  EXPECT_FALSE(Scheduler::in_parallel_context());
}

TEST(SchedulerRobustness, SequentialExceptionsAcrossSessions) {
  Scheduler sched(2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(sched.run([] { throw std::logic_error("again"); }),
                 std::logic_error);
  }
  int ok = 0;
  sched.run([&] { ok = 42; });
  EXPECT_EQ(ok, 42);
}

TEST(SchedulerRobustness, ManyWorkersFewTasks) {
  // More workers than work: mostly-idle thieves must not corrupt
  // anything or spin forever.
  Scheduler sched(16);
  std::atomic<int> count{0};
  RealCtx ctx;
  sched.run([&] {
    parallel_for(ctx, 0, 8, 1, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(SchedulerRobustness, DeepUnbalancedRecursion) {
  // A maximally unbalanced fork tree (linear chain of fork2) stresses
  // the deque discipline and the join-wait path.
  Scheduler sched(4);
  std::atomic<long> sum{0};
  std::function<void(int)> chain = [&](int depth) {
    if (depth == 0) return;
    Scheduler::fork2([&] { sum.fetch_add(1); },
                     [&] { chain(depth - 1); });
  };
  sched.run([&] { chain(2000); });
  EXPECT_EQ(sum.load(), 2000);
}

TEST(SchedulerRobustness, ColdPoolWakesOnForkRepeatedly) {
  // Regression for the idle-loop lost-wakeup window: a worker whose
  // steal sweep failed could block on sleep_cv_ and miss a notify
  // issued in between, leaving a forked child unserved until a timeout.
  // Force the all-asleep state over and over: let every helper park,
  // then fork a burst and require it to complete.  With the fix (wait
  // predicate re-checks deque emptiness under sleep_mutex_ + fork2
  // notifies when sleepers are registered) each round finishes without
  // relying on the timeout backstop; under TSan this also certifies the
  // sleepers_/deque handshake race-free.
  Scheduler sched(4);
  RealCtx ctx;
  for (int round = 0; round < 40; ++round) {
    // Cold the pool: 64 failed sweeps + parking happens within a few
    // ms of idleness.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::atomic<int> count{0};
    sched.run([&] {
      parallel_for(ctx, 0, 256, 4,
                   [&](std::size_t) { count.fetch_add(1); });
    });
    ASSERT_EQ(count.load(), 256) << "round " << round;
  }
}

TEST(SchedulerRobustness, DefaultSchedulerSingleton) {
  Scheduler& a = default_scheduler();
  Scheduler& b = default_scheduler();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
  std::atomic<int> hits{0};
  RealCtx ctx;
  a.run([&] {
    parallel_for(ctx, 0, 100, 4, [&](std::size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 100);
}

TEST(SchedulerRobustness, StealCountMonotone) {
  Scheduler sched(4);
  const auto before = sched.steal_count();
  RealCtx ctx;
  for (int round = 0; round < 10; ++round) {
    sched.run([&] {
      parallel_for(ctx, 0, 5000, 8, [&](std::size_t i) {
        benchmark_blackhole(i);
      });
    });
  }
  EXPECT_GE(sched.steal_count(), before);
}

TEST(SchedulerRobustness, WorkSpanCtxRejectsNegativeWork) {
  WorkSpanCtx ctx;
  EXPECT_THROW(ctx.work(-1.0), InvalidArgument);
}

}  // namespace
}  // namespace harmony::sched
