// Unit and stress tests for the work-stealing runtime (src/sched).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "sched/chase_lev.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/scheduler.hpp"

namespace harmony::sched {
namespace {

TEST(ChaseLev, LifoOwnerOrder) {
  ChaseLevDeque<int> d(4);
  int a = 1;
  int b = 2;
  int c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), &a);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(ChaseLev, StealTakesOldest) {
  ChaseLevDeque<int> d(4);
  int a = 1;
  int b = 2;
  d.push(&a);
  d.push(&b);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(1);  // capacity 2
  std::vector<int> vals(100);
  for (int i = 0; i < 100; ++i) {
    vals[static_cast<std::size_t>(i)] = i;
    d.push(&vals[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.size_approx(), 100);
  for (int i = 99; i >= 0; --i) {
    ASSERT_EQ(d.pop(), &vals[static_cast<std::size_t>(i)]);
  }
}

TEST(ChaseLev, ConcurrentStealersDrainExactlyOnce) {
  constexpr int kJobs = 20000;
  ChaseLevDeque<int> d(4);
  std::vector<int> vals(kJobs);
  std::atomic<int> taken{0};
  std::vector<std::atomic<int>> seen(kJobs);
  for (auto& s : seen) s.store(0);

  std::atomic<bool> go{false};
  auto thief = [&] {
    while (!go.load()) std::this_thread::yield();
    while (taken.load(std::memory_order_relaxed) < kJobs) {
      if (int* v = d.steal()) {
        seen[static_cast<std::size_t>(v - vals.data())].fetch_add(1);
        taken.fetch_add(1);
      }
    }
  };
  std::thread t1(thief);
  std::thread t2(thief);

  go.store(true);
  for (int i = 0; i < kJobs; ++i) {
    vals[static_cast<std::size_t>(i)] = i;
    d.push(&vals[static_cast<std::size_t>(i)]);
    // Owner also pops occasionally.
    if (i % 3 == 0) {
      if (int* v = d.pop()) {
        seen[static_cast<std::size_t>(v - vals.data())].fetch_add(1);
        taken.fetch_add(1);
      }
    }
  }
  while (taken.load() < kJobs) {
    if (int* v = d.pop()) {
      seen[static_cast<std::size_t>(v - vals.data())].fetch_add(1);
      taken.fetch_add(1);
    } else {
      std::this_thread::yield();
    }
  }
  t1.join();
  t2.join();
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "job " << i;
  }
}

TEST(Scheduler, Fork2SerialFallbackOutsideScheduler) {
  int a = 0;
  int b = 0;
  Scheduler::fork2([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, Fork2RunsBothBranches) {
  Scheduler sched(4);
  int a = 0;
  int b = 0;
  sched.run([&] {
    Scheduler::fork2([&] { a = 1; }, [&] { b = 2; });
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, NestedForksComputeFibonacci) {
  Scheduler sched(4);
  // Naive parallel fib exercises deep fork nesting and stealing.
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    long x = 0;
    long y = 0;
    Scheduler::fork2([&] { x = fib(n - 1); }, [&] { y = fib(n - 2); });
    return x + y;
  };
  long result = 0;
  sched.run([&] { result = fib(18); });
  EXPECT_EQ(result, 2584);
}

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler sched(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  RealCtx ctx;
  sched.run([&] {
    parallel_for(ctx, 0, kN, 64, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, ParallelReduceMatchesSerialSum) {
  Scheduler sched(4);
  constexpr std::size_t kN = 50000;
  std::vector<std::int64_t> data(kN);
  std::iota(data.begin(), data.end(), 1);
  RealCtx ctx;
  std::int64_t sum = 0;
  sched.run([&] {
    sum = parallel_reduce(
        ctx, 0, kN, 128, std::int64_t{0},
        [&](std::size_t i) { return data[i]; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(sum, static_cast<std::int64_t>(kN) *
                     static_cast<std::int64_t>(kN + 1) / 2);
}

TEST(Scheduler, RepeatedSessionsAreClean) {
  Scheduler sched(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    RealCtx ctx;
    sched.run([&] {
      parallel_for(ctx, 0, 1000, 16,
                   [&](std::size_t) { count.fetch_add(1); });
    });
    ASSERT_EQ(count.load(), 1000);
  }
}

TEST(Scheduler, SingleWorkerStillCorrect) {
  Scheduler sched(1);
  std::int64_t sum = 0;
  RealCtx ctx;
  sched.run([&] {
    sum = parallel_reduce(
        ctx, 0, std::size_t{1000}, 8, std::int64_t{0},
        [](std::size_t i) { return static_cast<std::int64_t>(i); },
        [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(Scheduler, InParallelContextFlag) {
  Scheduler sched(2);
  EXPECT_FALSE(Scheduler::in_parallel_context());
  bool inside = false;
  sched.run([&] { inside = Scheduler::in_parallel_context(); });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(Scheduler::in_parallel_context());
}

TEST(Scheduler, ParallelForEmptyAndTinyRanges) {
  Scheduler sched(2);
  RealCtx ctx;
  int count = 0;
  sched.run([&] {
    parallel_for(ctx, 5, 5, 4, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count, 0);
  std::atomic<int> c2{0};
  sched.run([&] {
    parallel_for(ctx, 0, 1, 4, [&](std::size_t) { c2.fetch_add(1); });
  });
  EXPECT_EQ(c2.load(), 1);
}

}  // namespace
}  // namespace harmony::sched
