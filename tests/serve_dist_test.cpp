// Router + worker-shard integration: the distributed serve tier end to
// end over the in-process loopback transport (DESIGN.md §17, ISSUE 10).
//
// Everything here runs the *full* wire path — encode, frame, decode,
// rebuild, Service, reply — with no fork, so the suite is TSan-clean
// and deterministic.  The acceptance properties pinned:
//   * wire answers are semantically identical to direct Service calls;
//   * repeat queries hit the affinity shard's result cache;
//   * duplicate in-flight queries coalesce onto one shard ask;
//   * stolen requests return byte-identical semantic payloads;
//   * drain completes with zero dropped or errored in-flight requests,
//     and rejoin restores the exact pre-drain placement;
//   * snapshot/restore warm-starts a fresh shard: replayed keys are
//     cache hits and recompile nothing;
//   * fleet metrics are merged (counters summed, histograms added),
//     not averaged.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"

namespace harmony::serve {
namespace {

constexpr auto kOk = static_cast<std::uint8_t>(Status::kOk);
constexpr auto kError = static_cast<std::uint8_t>(Status::kError);
constexpr auto kRejected = static_cast<std::uint8_t>(Status::kRejected);

WorkerConfig small_worker() {
  WorkerConfig cfg;
  cfg.service.num_workers = 2;
  return cfg;
}

/// A router fronting `n` in-process workers over loopback channels.
/// start=false leaves the workers idle with frames queuing in the
/// loopback — the deterministic setup for the coalesce/steal tests.
struct Fleet {
  Router router;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::shared_ptr<Channel>> channels;
  std::vector<std::thread> threads;

  explicit Fleet(std::size_t n, RouterConfig rcfg = {}, bool start = true)
      : router(rcfg) {
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<Worker>(small_worker()));
      ChannelPair pair = make_loopback_pair();
      channels.push_back(pair.right);
      router.add_shard("shard" + std::to_string(i), pair.left);
      if (start) start_worker(i);
    }
  }

  void start_worker(std::size_t i) {
    threads.emplace_back(
        [w = workers[i].get(), ch = channels[i]] { w->serve(ch); });
  }

  void start_all() {
    for (std::size_t i = 0; i < workers.size(); ++i) start_worker(i);
  }

  ~Fleet() {
    router.shutdown();
    for (std::thread& t : threads) t.join();
  }
};

WireRequest cost_req(std::int64_t n, std::int64_t m, int pes) {
  WireRequest req;
  req.kind = RequestKind::kCostEval;
  req.spec = "editdist:" + std::to_string(n) + "x" + std::to_string(m);
  req.machine_cols = pes;
  req.machine_rows = 1;
  req.inputs = {InputPlacement::at({0, 0}), InputPlacement::at({0, 0})};
  req.map = fm::AffineMap{.ti = 1, .tj = 1, .xi = 1, .cols = pes, .rows = 1};
  return req;
}

WireRequest tune_req(const std::string& spec, int pes) {
  WireRequest req;
  req.kind = RequestKind::kTune;
  req.spec = spec;
  req.machine_cols = pes;
  req.machine_rows = 1;
  req.inputs = {InputPlacement::at({0, 0}), InputPlacement::at({0, 0})};
  req.quick_sample = 16;
  req.top_k = 2;
  return req;
}

TEST(ServeDist, CostEvalMatchesDirectServiceCall) {
  const WireRequest wire = cost_req(8, 6, 4);

  // Direct oracle: the same Request through an in-process Service.
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service direct(cfg);
  SpecCatalog catalog;
  const Response expect = direct.call(to_request(wire, catalog));
  ASSERT_TRUE(expect.ok());

  Fleet fleet(2);
  const WireResponse got = fleet.router.call(wire);
  EXPECT_EQ(got.status, kOk);
  EXPECT_EQ(semantic_bytes(got), semantic_bytes(to_wire(expect)));
  EXPECT_EQ(got.makespan_cycles, expect.cost.makespan_cycles);
}

TEST(ServeDist, TuneMatchesDirectServiceCall) {
  const WireRequest wire = tune_req("editdist:4x4", 4);

  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service direct(cfg);
  SpecCatalog catalog;
  const Response expect = direct.call(to_request(wire, catalog));
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(expect.search.found);

  Fleet fleet(2);
  const WireResponse got = fleet.router.call(wire);
  EXPECT_EQ(got.status, kOk);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.best_makespan_cycles, expect.search.best.cost.makespan_cycles);
  EXPECT_EQ(semantic_bytes(got), semantic_bytes(to_wire(expect)));
}

TEST(ServeDist, RepeatQueryHitsAffinityShardCache) {
  Fleet fleet(4);
  const WireRequest wire = cost_req(8, 8, 4);

  const WireResponse first = fleet.router.call(wire);
  ASSERT_EQ(first.status, kOk);
  EXPECT_FALSE(first.cache_hit);

  const WireResponse second = fleet.router.call(wire);
  ASSERT_EQ(second.status, kOk);
  EXPECT_TRUE(second.cache_hit) << "same key must ride to the warm shard";
  EXPECT_EQ(second.shard, first.shard);
  EXPECT_EQ(semantic_bytes(second), semantic_bytes(first));
}

TEST(ServeDist, DuplicateInFlightQueriesCoalesce) {
  // Workers start *after* the burst is submitted, so every duplicate
  // provably arrives while the leader is in flight — no timing window.
  Fleet fleet(2, RouterConfig{}, /*start=*/false);
  const WireRequest wire = cost_req(10, 10, 4);

  constexpr int kBurst = 16;
  std::vector<std::promise<WireResponse>> done(kBurst);
  std::vector<std::future<WireResponse>> futs;
  futs.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) futs.push_back(done[i].get_future());
  for (int i = 0; i < kBurst; ++i) {
    fleet.router.submit(
        wire, [&done, i](const WireResponse& r) { done[i].set_value(r); });
  }

  const RouterStats pre = fleet.router.stats();
  EXPECT_EQ(pre.routed, 1u) << "one shard ask for the whole burst";
  EXPECT_EQ(pre.coalesced, static_cast<std::uint64_t>(kBurst - 1));

  fleet.start_all();
  int coalesced = 0;
  std::vector<std::uint8_t> leader_bytes;
  for (int i = 0; i < kBurst; ++i) {
    const WireResponse r = futs[i].get();
    EXPECT_EQ(r.status, kOk);
    coalesced += r.coalesced ? 1 : 0;
    if (leader_bytes.empty()) leader_bytes = semantic_bytes(r);
    EXPECT_EQ(semantic_bytes(r), leader_bytes);
  }
  EXPECT_EQ(coalesced, kBurst - 1);
}

TEST(ServeDist, DeadlineRequestsOptOutOfCoalescing) {
  Fleet fleet(1, RouterConfig{}, /*start=*/false);
  WireRequest wire = cost_req(6, 6, 2);
  wire.deadline_ns = 1'000'000'000;  // patient, but deadline-carrying

  std::promise<WireResponse> p1, p2;
  fleet.router.submit(wire,
                      [&p1](const WireResponse& r) { p1.set_value(r); });
  fleet.router.submit(wire,
                      [&p2](const WireResponse& r) { p2.set_value(r); });
  const RouterStats pre = fleet.router.stats();
  EXPECT_EQ(pre.routed, 2u) << "deadline requests never coalesce";
  EXPECT_EQ(pre.coalesced, 0u);

  fleet.start_all();
  EXPECT_EQ(p1.get_future().get().status, kOk);
  EXPECT_EQ(p2.get_future().get().status, kOk);
}

TEST(ServeDist, StolenResultIsByteIdenticalToAffinityResult) {
  RouterConfig rcfg;
  rcfg.coalesce = false;   // force both asks onto the wire
  rcfg.steal_margin = 0;   // steal on any imbalance
  Fleet fleet(2, rcfg, /*start=*/false);

  const WireRequest wire = cost_req(9, 7, 4);
  std::promise<WireResponse> p1, p2;
  // First ask queues on the (idle) affinity shard; the second sees
  // outstanding 1 vs 0 and must steal to the other shard.
  fleet.router.submit(wire,
                      [&p1](const WireResponse& r) { p1.set_value(r); });
  fleet.router.submit(wire,
                      [&p2](const WireResponse& r) { p2.set_value(r); });
  EXPECT_EQ(fleet.router.stats().stolen, 1u);

  fleet.start_all();
  const WireResponse affinity = p1.get_future().get();
  const WireResponse stolen = p2.get_future().get();
  ASSERT_EQ(affinity.status, kOk);
  ASSERT_EQ(stolen.status, kOk);
  EXPECT_FALSE(affinity.stolen);
  EXPECT_TRUE(stolen.stolen);
  EXPECT_NE(affinity.shard, stolen.shard);
  // The steal traded cache affinity for queue depth — nothing else.
  EXPECT_EQ(semantic_bytes(stolen), semantic_bytes(affinity));
}

TEST(ServeDist, DrainDropsNothingAndRejoinRestoresPlacement) {
  RouterConfig rcfg;
  rcfg.coalesce = false;
  rcfg.enable_steal = false;  // shard field is pure ring placement
  Fleet fleet(2, rcfg);

  // Map out which shard owns which probe key (ring is deterministic).
  std::vector<WireRequest> probes;
  std::vector<std::uint32_t> owner;
  for (int n = 4; n < 12; ++n) {
    probes.push_back(cost_req(n, n + 1, 4));
    const WireResponse r = fleet.router.call(probes.back());
    EXPECT_EQ(r.status, kOk);
    owner.push_back(r.shard);
  }
  const auto owned_by = [&](std::uint32_t shard) -> const WireRequest* {
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (owner[i] == shard) return &probes[i];
    }
    return nullptr;
  };
  const WireRequest* key0 = owned_by(0);
  ASSERT_NE(key0, nullptr) << "8 distinct keys must cover both shards";
  ASSERT_NE(owned_by(1), nullptr);

  // Concurrent open load while shard 0 drains.
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::vector<std::uint8_t>> statuses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const WireRequest& req = probes[(c * kPerClient + i) % probes.size()];
        statuses[c].push_back(fleet.router.call(req).status);
      }
    });
  }
  fleet.router.drain(0);
  for (std::thread& t : clients) t.join();

  for (const auto& client : statuses) {
    ASSERT_EQ(client.size(), static_cast<std::size_t>(kPerClient));
    for (const std::uint8_t s : client) {
      EXPECT_EQ(s, kOk) << "drain must not drop or error in-flight work";
    }
  }

  // Drained: shard 0's keys fall through to shard 1.
  const WireResponse moved = fleet.router.call(*key0);
  EXPECT_EQ(moved.status, kOk);
  EXPECT_EQ(moved.shard, 1u);

  // Rejoined: the exact pre-drain placement returns.
  fleet.router.rejoin(0);
  const WireResponse back = fleet.router.call(*key0);
  EXPECT_EQ(back.status, kOk);
  EXPECT_EQ(back.shard, 0u);
}

TEST(ServeDist, SnapshotRestoreWarmStartsWithoutRecompiles) {
  const WireRequest tune_a = tune_req("editdist:4x4", 4);
  const WireRequest tune_b = tune_req("matmul:3", 4);

  std::vector<std::uint8_t> snapshot;
  std::vector<std::uint8_t> bytes_a, bytes_b;
  std::uint64_t source_compile_misses = 0;
  {
    Fleet source(1);
    const WireResponse ra = source.router.call(tune_a);
    const WireResponse rb = source.router.call(tune_b);
    ASSERT_EQ(ra.status, kOk);
    ASSERT_EQ(rb.status, kOk);
    bytes_a = semantic_bytes(ra);
    bytes_b = semantic_bytes(rb);
    const WireMetrics m = source.router.shard_metrics(0);
    source_compile_misses = m.compile_misses;
    EXPECT_GE(source_compile_misses, 2u);  // two distinct compile keys
    snapshot = source.router.snapshot_shard(0);
    EXPECT_FALSE(snapshot.empty());
  }

  Fleet restored(1);
  EXPECT_EQ(restored.router.restore_shard(0, snapshot), 2u);
  const WireMetrics after_restore = restored.router.shard_metrics(0);
  // The restore-time compiles are the snapshot's miss set — bounded by
  // what the source shard itself paid.
  EXPECT_LE(after_restore.compile_misses, source_compile_misses);

  // Replaying the snapshot's keys: pure cache hits, zero new compiles,
  // answers byte-identical to the source shard's.
  const WireResponse ra = restored.router.call(tune_a);
  const WireResponse rb = restored.router.call(tune_b);
  ASSERT_EQ(ra.status, kOk);
  ASSERT_EQ(rb.status, kOk);
  EXPECT_TRUE(ra.cache_hit);
  EXPECT_TRUE(rb.cache_hit);
  EXPECT_EQ(semantic_bytes(ra), bytes_a);
  EXPECT_EQ(semantic_bytes(rb), bytes_b);

  const WireMetrics after_replay = restored.router.shard_metrics(0);
  EXPECT_EQ(after_replay.compile_misses, after_restore.compile_misses)
      << "replayed keys must not recompile";
  EXPECT_GE(after_replay.cache_hits, 2u);
}

TEST(ServeDist, FleetMetricsMergeCountersAndHistograms) {
  Fleet fleet(2);
  for (int n = 4; n < 10; ++n) {
    EXPECT_EQ(fleet.router.call(cost_req(n, n, 2)).status, kOk);
  }

  const WireMetrics s0 = fleet.router.shard_metrics(0);
  const WireMetrics s1 = fleet.router.shard_metrics(1);
  const WireMetrics fleet_m = fleet.router.fleet_metrics();
  EXPECT_EQ(fleet_m.submitted, s0.submitted + s1.submitted);
  EXPECT_EQ(fleet_m.completed, s0.completed + s1.completed);
  EXPECT_EQ(fleet_m.completed, 6u);
  EXPECT_EQ(fleet_m.errors, 0u);

  std::uint64_t shard_obs = 0, fleet_obs = 0;
  for (const std::uint64_t c : s0.latency_buckets) shard_obs += c;
  for (const std::uint64_t c : s1.latency_buckets) shard_obs += c;
  for (const std::uint64_t c : fleet_m.latency_buckets) fleet_obs += c;
  EXPECT_EQ(fleet_obs, shard_obs);
  EXPECT_EQ(fleet_obs, 6u);

  // The merged buckets feed straight back into a histogram for true
  // fleet percentiles.
  LatencyHistogram h;
  h.add_counts(fleet_m.latency_buckets);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_GT(h.percentile_us(0.5), 0.0);
}

TEST(ServeDist, UnknownSpecAndUnsupportedKindYieldErrorsNotDeath) {
  Fleet fleet(1);

  WireRequest bogus = cost_req(4, 4, 2);
  bogus.spec = "bogus:3";
  const WireResponse r1 = fleet.router.call(bogus);
  EXPECT_EQ(r1.status, kError);
  EXPECT_NE(r1.error.find("unknown spec family"), std::string::npos);

  WireRequest pipeline = cost_req(4, 4, 2);
  pipeline.kind = RequestKind::kPipelineTune;
  const WireResponse r2 = fleet.router.call(pipeline);
  EXPECT_EQ(r2.status, kError);
  EXPECT_NE(r2.error.find("not supported"), std::string::npos);

  // The shard survives both: a well-formed follow-up still answers.
  EXPECT_EQ(fleet.router.call(cost_req(4, 4, 2)).status, kOk);
}

TEST(ServeDist, RouterWithoutShardsRejects) {
  Router router;
  const WireResponse r = router.call(cost_req(4, 4, 2));
  EXPECT_EQ(r.status, kRejected);
  EXPECT_NE(r.error.find("no shards"), std::string::npos);
}

}  // namespace
}  // namespace harmony::serve
