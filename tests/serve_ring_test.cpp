// Consistent-hash ring invariants (DESIGN.md §17, ISSUE 10 satellite 3).
//
// The router's placement guarantees all reduce to three HashRing
// properties pinned here:
//   * determinism — placement is a pure function of (seed, shard set,
//     active set); two rings built the same way agree on every key;
//   * balance — 64 vnodes/shard spreads keys close to uniformly;
//   * bounded movement — draining or adding a shard moves only the keys
//     that must move (≈ K/N for one shard of N), and reactivation
//     restores the exact pre-drain placement.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "serve/ring.hpp"
#include "support/rng.hpp"

namespace harmony::serve {
namespace {

// Deterministic stream of well-spread 128-bit keys.
std::vector<CacheKey> make_keys(std::size_t n, std::uint64_t seed = 42) {
  SplitMix64 mix(seed);
  std::vector<CacheKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CacheKey k;
    k.hi = mix.next();
    k.lo = mix.next();
    keys.push_back(k);
  }
  return keys;
}

std::vector<std::size_t> placements(const HashRing& ring,
                                    const std::vector<CacheKey>& keys) {
  std::vector<std::size_t> out;
  out.reserve(keys.size());
  for (const CacheKey& k : keys) out.push_back(ring.lookup(k));
  return out;
}

TEST(HashRing, DeterministicPlacementForFixedSeed) {
  RingConfig cfg;
  HashRing a(cfg);
  HashRing b(cfg);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a.add_shard(), static_cast<std::size_t>(s));
    EXPECT_EQ(b.add_shard(), static_cast<std::size_t>(s));
  }
  const auto keys = make_keys(1000);
  EXPECT_EQ(placements(a, keys), placements(b, keys));

  // A different seed is a different ring: at least some keys must land
  // elsewhere (all 1000 agreeing would mean the seed is ignored).
  RingConfig other = cfg;
  other.seed ^= 0x1234567;
  HashRing c(other);
  for (int s = 0; s < 4; ++s) c.add_shard();
  EXPECT_NE(placements(a, keys), placements(c, keys));
}

TEST(HashRing, BalanceOver1000Keys) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kKeys = 1000;
  HashRing ring{RingConfig{}};
  for (std::size_t s = 0; s < kShards; ++s) ring.add_shard();

  std::vector<std::size_t> count(kShards, 0);
  for (const CacheKey& k : make_keys(kKeys)) ++count[ring.lookup(k)];

  // With 64 vnodes/shard the arc-length imbalance is modest; require
  // every shard within [0.5x, 1.7x] of the fair share — loose enough to
  // be seed-robust, tight enough to catch a broken point function
  // (which typically sends 0 or ~all keys to one shard).
  const double fair = static_cast<double>(kKeys) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], static_cast<std::size_t>(fair * 0.5)) << "shard " << s;
    EXPECT_LT(count[s], static_cast<std::size_t>(fair * 1.7)) << "shard " << s;
  }
}

TEST(HashRing, DrainMovesOnlyTheDrainedShardsKeys) {
  constexpr std::size_t kShards = 4;
  HashRing ring{RingConfig{}};
  for (std::size_t s = 0; s < kShards; ++s) ring.add_shard();

  const auto keys = make_keys(1000);
  const auto before = placements(ring, keys);

  ring.set_active(1, false);
  EXPECT_EQ(ring.num_active(), kShards - 1);
  const auto during = placements(ring, keys);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] == 1) {
      // Every key of the drained shard must move, and never back to it.
      EXPECT_NE(during[i], 1u);
    } else {
      // Keys of surviving shards must not move at all: deactivation
      // removes points, it does not re-hash the ring.
      EXPECT_EQ(during[i], before[i]);
    }
    moved += during[i] != before[i] ? 1 : 0;
  }
  // Movement is exactly the drained shard's share: ≈ K/N, bounded with
  // the same slack as the balance test.
  const double fair = 1000.0 / kShards;
  EXPECT_GT(moved, static_cast<std::size_t>(fair * 0.5));
  EXPECT_LT(moved, static_cast<std::size_t>(fair * 1.7));
}

TEST(HashRing, ReactivationRestoresExactPlacement) {
  HashRing ring{RingConfig{}};
  for (int s = 0; s < 4; ++s) ring.add_shard();
  const auto keys = make_keys(1000);
  const auto before = placements(ring, keys);

  ring.set_active(2, false);
  ring.set_active(2, true);
  EXPECT_EQ(placements(ring, keys), before);
}

TEST(HashRing, AddShardMovesBoundedFraction) {
  constexpr std::size_t kShards = 4;
  HashRing ring{RingConfig{}};
  for (std::size_t s = 0; s < kShards; ++s) ring.add_shard();
  const auto keys = make_keys(1000);
  const auto before = placements(ring, keys);

  ring.add_shard();
  const auto after = placements(ring, keys);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (after[i] != before[i]) {
      // Keys only move *to* the new shard; a consistent ring never
      // shuffles keys between pre-existing shards on a join.
      EXPECT_EQ(after[i], kShards);
      ++moved;
    }
  }
  // The new shard claims ≈ K/(N+1); same slack band as above.
  const double fair = 1000.0 / (kShards + 1);
  EXPECT_GT(moved, static_cast<std::size_t>(fair * 0.5));
  EXPECT_LT(moved, static_cast<std::size_t>(fair * 1.7));
}

TEST(HashRing, ErrorsOnDegenerateStates) {
  HashRing empty{RingConfig{}};
  EXPECT_THROW((void)empty.lookup(CacheKey{1, 2}), std::invalid_argument);

  HashRing ring{RingConfig{}};
  ring.add_shard();
  ring.set_active(0, false);
  EXPECT_THROW((void)ring.lookup(CacheKey{1, 2}), std::invalid_argument);
  EXPECT_THROW(ring.set_active(1, false), std::out_of_range);
  EXPECT_THROW((void)ring.active(1), std::out_of_range);

  RingConfig zero;
  zero.vnodes = 0;
  EXPECT_THROW(HashRing bad{zero}, std::invalid_argument);
}

}  // namespace
}  // namespace harmony::serve
