// Multi-threaded stress/correctness test for harmony::serve.
//
// This is the binary scripts/check.sh runs under ThreadSanitizer: many
// client threads hammer one Service with a mixed request stream (cost
// evals over a Zipf-ish key set, legality checks, tunes with and without
// deadlines) while the cache is kept deliberately tiny to force
// evictions, then a second scenario shuts the service down mid-stream.
// Assertions are invariants, not timings: every future completes, every
// response is internally consistent, accounting balances.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "algos/editdist.hpp"
#include "fm/cost.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"

namespace harmony::serve {
namespace {

using namespace std::chrono_literals;

struct Workload {
  std::vector<std::shared_ptr<const fm::FunctionSpec>> specs;
  std::vector<fm::AffineMap> maps;

  explicit Workload(int distinct_specs) {
    algos::SwScores s;
    for (int i = 0; i < distinct_specs; ++i) {
      const std::int64_t n = 6 + i;  // distinct domains => distinct keys
      specs.push_back(std::make_shared<const fm::FunctionSpec>(
          algos::editdist_spec(n, n, s)));
    }
    // A few map variants per spec, legal and illegal alike.
    for (std::int64_t ti = 1; ti <= 2; ++ti) {
      for (std::int64_t xi : {0, 1}) {
        maps.push_back(fm::AffineMap{.ti = ti, .tj = 1, .tk = 0, .t0 = 0,
                                     .xi = xi, .xj = 0, .xk = 0, .x0 = 0,
                                     .yi = 0, .yj = 0, .yk = 0, .y0 = 0,
                                     .cols = 8, .rows = 1});
      }
    }
  }

  [[nodiscard]] Request make(Rng& rng) const {
    Request req;
    req.spec = specs[rng.next_below(specs.size())];
    req.machine = fm::make_machine(8, 1);
    req.inputs = {InputPlacement::at({0, 0}), InputPlacement::at({0, 0})};
    req.map = maps[rng.next_below(maps.size())];
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 6) {
      req.kind = RequestKind::kCostEval;
    } else if (kind < 9) {
      req.kind = RequestKind::kLegality;
    } else {
      req.kind = RequestKind::kTune;
      req.search.space.time_coeffs = {0, 1, 2};
      req.search.space.space_coeffs = {-1, 0, 1};
      if (rng.next_bool(0.5)) req.deadline = 20ms;
    }
    return req;
  }
};

TEST(ServeStress, MixedTrafficManyClientsTinyCache) {
  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 8;  // force constant eviction churn
  cfg.cache_shards = 2;
  cfg.max_batch = 16;
  cfg.batch_linger = 100us;
  Service svc(cfg);

  const Workload load(6);
  constexpr int kClients = 8;
  constexpr int kPerClient = 120;

  std::atomic<std::uint64_t> ok{0}, rejected{0}, errors{0}, hits{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xc11e47ULL + static_cast<std::uint64_t>(c));
      std::vector<std::future<Response>> inflight;
      for (int i = 0; i < kPerClient; ++i) {
        inflight.push_back(svc.submit(load.make(rng)));
        // Keep a small pipeline per client so the queue sees real
        // concurrency without unbounded fan-out.
        if (inflight.size() >= 8) {
          const Response r = inflight.front().get();
          inflight.erase(inflight.begin());
          switch (r.status) {
            case Status::kOk:
              ++ok;
              hits += r.cache_hit ? 1 : 0;
              break;
            case Status::kRejected:
              EXPECT_GT(r.retry_after.count(), 0);
              ++rejected;
              break;
            case Status::kError:
              ADD_FAILURE() << "unexpected error: " << r.error;
              ++errors;
              break;
          }
        }
      }
      for (auto& f : inflight) {
        const Response r = f.get();
        if (r.status == Status::kOk) {
          ++ok;
          hits += r.cache_hit ? 1 : 0;
        } else if (r.status == Status::kRejected) {
          ++rejected;
        } else {
          ADD_FAILURE() << "unexpected error: " << r.error;
          ++errors;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every submitted request got exactly one response.
  const std::uint64_t total = ok + rejected + errors;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(ok.load(), 0u);

  const MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.completed + snap.rejected, total);
  EXPECT_EQ(snap.rejected, rejected.load());
  EXPECT_EQ(snap.queue_depth, 0u);
  // Tiny cache + six specs × four maps × kinds: entries never exceed
  // capacity, and the churn shows up as evictions.
  const CacheStats cs = snap.cache;
  EXPECT_LE(cs.entries, 8u);
  EXPECT_GT(cs.evictions, 0u);

  // Spot-check correctness survived the stampede: one more request per
  // (spec, map) against the direct oracle.
  Rng rng(7);
  for (int i = 0; i < 4; ++i) {
    Request req = load.make(rng);
    req.kind = RequestKind::kCostEval;
    req.deadline = std::chrono::nanoseconds{0};
    fm::Mapping m;
    m.set_computed(2, req.map.place_fn(), req.map.time_fn());
    m.set_input(0, fm::InputHome::at({0, 0}));
    m.set_input(1, fm::InputHome::at({0, 0}));
    fm::CostReport direct;
    bool direct_ok = true;
    try {
      direct = fm::evaluate_cost(*req.spec, m, req.machine);
    } catch (const std::exception&) {
      direct_ok = false;
    }
    const Response r = svc.call(req);
    if (direct_ok) {
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_EQ(r.cost.makespan_cycles, direct.makespan_cycles);
      EXPECT_DOUBLE_EQ(r.cost.total_energy().femtojoules(),
                       direct.total_energy().femtojoules());
    } else {
      EXPECT_EQ(r.status, Status::kError);
    }
  }
}

TEST(ServeStress, CompileStampedeCoalescesToOneMiss) {
  // Regression: compiled_for probes the compile cache under its lock
  // but compiles *outside* it, so concurrent misses on one compile key
  // used to each run fm::compile_spec and each record a miss.  In-flight
  // coalescing must collapse the stampede: one leader compiles, the
  // duplicates wait on it, and exactly one miss is recorded no matter
  // how the batch interleaves.
  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.max_batch = 32;
  cfg.batch_linger = 5ms;  // let every request land in one batch
  Service svc(cfg);

  // A deliberately expensive compile — big domain, 64-PE machine, so
  // the P×P route/energy tables take long enough that un-coalesced
  // concurrent misses reliably overlap.  The search space is kept tiny
  // (16 slots); whether a legal mapping exists is irrelevant here.
  algos::SwScores s;
  const auto spec = std::make_shared<const fm::FunctionSpec>(
      algos::editdist_spec(48, 48, s));

  constexpr int kTunes = 8;
  std::vector<std::future<Response>> futures;
  futures.reserve(kTunes);
  for (int i = 0; i < kTunes; ++i) {
    Request req;
    req.kind = RequestKind::kTune;
    req.spec = spec;
    req.machine = fm::make_machine(16, 4);
    req.inputs = {InputPlacement::dram(), InputPlacement::dram()};
    req.search.space.time_coeffs = {1};
    req.search.space.space_coeffs = {0, 1};
    // Distinct top_k => distinct *result* cache keys (no batch dedup,
    // every request runs its own oracle), while the *compile* key —
    // which ignores search knobs — is identical across all of them.
    req.search.top_k = static_cast<std::size_t>(i + 1);
    futures.push_back(svc.submit(std::move(req)));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
  }

  const MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.compile_misses, 1u)
      << "concurrent identical compiles were not coalesced";
  EXPECT_EQ(snap.compile_hits, static_cast<std::uint64_t>(kTunes - 1));
}

TEST(ServeStress, ShutdownMidStreamDrainsAdmittedWork) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.queue_capacity = 64;
  cfg.max_batch = 8;
  Service svc(cfg);

  const Workload load(3);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x5d0ffULL + static_cast<std::uint64_t>(c));
      std::vector<std::future<Response>> inflight;
      while (!stop.load(std::memory_order_acquire)) {
        Request req = load.make(rng);
        req.kind = RequestKind::kCostEval;  // keep each unit of work small
        inflight.push_back(svc.submit(std::move(req)));
        if (inflight.size() > 16) {
          (void)inflight.front().get();
          inflight.erase(inflight.begin());
          ++answered;
        }
      }
      for (auto& f : inflight) {
        // Drained or rejected — but never abandoned: the future must
        // resolve even though shutdown raced the submission.
        const Response r = f.get();
        EXPECT_NE(r.status, Status::kError) << r.error;
        ++answered;
      }
    });
  }

  std::this_thread::sleep_for(50ms);
  svc.shutdown();  // concurrent with active submitters
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  EXPECT_GT(answered.load(), 0u);

  // Idempotent: a second shutdown (and the destructor after it) is safe.
  svc.shutdown();
  Rng rng(1);
  Request late_req = load.make(rng);
  late_req.kind = RequestKind::kCostEval;
  late_req.map.t0 = 9999;  // fresh key: a cache hit would still be served
  const Response late = svc.call(std::move(late_req));
  EXPECT_EQ(late.status, Status::kRejected);
}

}  // namespace
}  // namespace harmony::serve
