// Unit tests for the harmony::serve subsystem: queue backpressure, cache
// keys, LRU behaviour, request execution correctness, deadline-cut
// tuning, resumable search, and metrics export.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "algos/editdist.hpp"
#include "algos/pipelines.hpp"
#include "algos/specs.hpp"
#include "fm/cost.hpp"
#include "fm/search.hpp"
#include "fm/strategy/strategy.hpp"
#include "fm/strategy/table_map.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace harmony::serve {
namespace {

using namespace std::chrono_literals;

// Deadline-cut latency is bounded by one in-flight candidate per lane,
// and sanitizers slow each candidate's full-domain verify — TSan by an
// order of magnitude, ASan by a small factor — so wall-clock tests
// scale their budgets, keeping the guarantee under test (cut + respond
// within the margin) the same on a slower clock.
#if defined(__SANITIZE_THREAD__)
constexpr int kTimeScale = 4;
#elif defined(__SANITIZE_ADDRESS__)
constexpr int kTimeScale = 2;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kTimeScale = 4;
#elif __has_feature(address_sanitizer)
constexpr int kTimeScale = 2;
#else
constexpr int kTimeScale = 1;
#endif
#else
constexpr int kTimeScale = 1;
#endif

std::shared_ptr<const fm::FunctionSpec> shared_editdist(std::int64_t n) {
  algos::SwScores s;
  return std::make_shared<const fm::FunctionSpec>(
      algos::editdist_spec(n, n, s));
}

Request editdist_cost_request(std::int64_t n, int pes) {
  Request req;
  req.kind = RequestKind::kCostEval;
  req.spec = shared_editdist(n);
  req.machine = fm::make_machine(pes, 1);
  req.inputs = {InputPlacement::at({0, 0}), InputPlacement::at({0, 0})};
  // The anti-diagonal wavefront: known-legal on a wide-enough array.
  req.map = fm::AffineMap{.ti = 1, .tj = 1, .tk = 0, .t0 = 0,
                          .xi = 1, .xj = 0, .xk = 0, .x0 = 0,
                          .yi = 0, .yj = 0, .yk = 0, .y0 = 0,
                          .cols = pes, .rows = 1};
  return req;
}

fm::Mapping editdist_mapping(const Request& req) {
  fm::Mapping m;
  m.set_computed(2, req.map.place_fn(), req.map.time_fn());
  m.set_input(0, fm::InputHome::at({0, 0}));
  m.set_input(1, fm::InputHome::at({0, 0}));
  return m;
}

// --- BoundedQueue ---

TEST(BoundedQueue, BackpressureAndDrain) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: reject, don't block
  EXPECT_EQ(q.size(), 2u);

  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(3));  // space again

  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: no new work
  // Admitted items stay poppable after close (graceful drain).
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.pop(v));  // closed and drained
}

TEST(BoundedQueue, PopBatchTakesUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> batch;
  ASSERT_TRUE(q.pop_batch(batch, 3, 0us));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  batch.clear();
  ASSERT_TRUE(q.pop_batch(batch, 8, 0us));
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
  q.close();
  batch.clear();
  EXPECT_FALSE(q.pop_batch(batch, 8, 0us));
}

TEST(BoundedQueue, PopBatchLingerIsADeadlineNotPerArrivalBudget) {
  // Regression: pop_batch used to restart the full linger budget on the
  // wait after the first take.  With a straggler trickle slower than
  // the batch fills, a restarting budget keeps the popper lingering
  // round after round; a deadline fixed on entry returns as soon as the
  // budget elapses.  Feed one item immediately, then a straggler every
  // 25ms: a 150ms linger must return in ~150ms with only the stragglers
  // that arrived inside the window, not wait for the batch to fill.
  BoundedQueue<int> q(64);
  ASSERT_TRUE(q.try_push(0));

  std::vector<int> batch;
  std::chrono::steady_clock::duration elapsed{};
  std::thread popper([&] {
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(q.pop_batch(batch, /*max_items=*/16, /*linger=*/150ms));
    elapsed = std::chrono::steady_clock::now() - t0;
  });
  std::thread feeder([&] {
    for (int i = 1; i <= 20; ++i) {
      std::this_thread::sleep_for(25ms);
      if (!q.try_push(i)) break;  // queue closed by test end
    }
  });
  popper.join();
  // Latency is bounded by the linger deadline (plus scheduling slack),
  // even though stragglers keep arriving past it.
  EXPECT_LT(elapsed, 400ms);
  // It genuinely lingered: more than the first item + first straggler
  // (a single-wait-round implementation returns with 2)...
  EXPECT_GE(batch.size(), 3u);
  // ...but stopped at the deadline instead of collecting all 16.
  EXPECT_LT(batch.size(), 16u);
  q.close();
  feeder.join();
}

TEST(BoundedQueue, CloseWakesBlockedPopper) {
  BoundedQueue<int> q(4);
  std::thread popper([&] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  popper.join();
}

// --- cache keys ---

TEST(CacheKey, CompileKeyCoarserThanResultKeyAndDomainSeparated) {
  Request a = editdist_cost_request(8, 8);
  a.kind = RequestKind::kTune;
  a.fom = fm::FigureOfMerit::kTime;
  Request b = a;
  b.fom = fm::FigureOfMerit::kEnergy;
  b.search.top_k = 9;
  EXPECT_NE(make_cache_key(a), make_cache_key(b));      // results differ
  EXPECT_EQ(make_compile_key(a), make_compile_key(b));  // tables shared
  EXPECT_NE(make_compile_key(a), make_cache_key(a));    // tag separation

  Request c = a;
  c.machine = fm::make_machine(4, 1);
  EXPECT_NE(make_compile_key(c), make_compile_key(a));
  Request d = a;
  d.inputs = {InputPlacement::dram(), InputPlacement::at({0, 0})};
  EXPECT_NE(make_compile_key(d), make_compile_key(a));
}

TEST(CacheKey, StableAcrossIndependentSpecBuilds) {
  Request a = editdist_cost_request(8, 8);
  Request b = editdist_cost_request(8, 8);
  ASSERT_NE(a.spec.get(), b.spec.get());
  EXPECT_EQ(make_cache_key(a), make_cache_key(b));
}

TEST(CacheKey, SensitiveToEveryComponent) {
  const Request base = editdist_cost_request(8, 8);
  const CacheKey k0 = make_cache_key(base);

  Request diff = editdist_cost_request(9, 8);  // domain extent
  EXPECT_NE(make_cache_key(diff), k0);

  diff = editdist_cost_request(8, 4);  // machine geometry (and map.cols)
  EXPECT_NE(make_cache_key(diff), k0);

  diff = editdist_cost_request(8, 8);
  diff.fom = fm::FigureOfMerit::kTime;  // figure of merit
  EXPECT_NE(make_cache_key(diff), k0);

  diff = editdist_cost_request(8, 8);
  diff.map.tj = 2;  // affine coefficient
  EXPECT_NE(make_cache_key(diff), k0);

  diff = editdist_cost_request(8, 8);
  diff.inputs[1] = InputPlacement::dram();  // input placement
  EXPECT_NE(make_cache_key(diff), k0);

  diff = editdist_cost_request(8, 8);
  diff.kind = RequestKind::kLegality;  // request kind
  EXPECT_NE(make_cache_key(diff), k0);
}

TEST(CacheKey, TuneKeyIgnoresCancelAndResume) {
  Request a = editdist_cost_request(8, 8);
  a.kind = RequestKind::kTune;
  Request b = editdist_cost_request(8, 8);
  b.kind = RequestKind::kTune;
  b.search.cancel = [] { return false; };
  b.search.resume_from = 17;
  EXPECT_EQ(make_cache_key(a), make_cache_key(b));

  b.search.space.time_coeffs.push_back(3);  // but the space matters
  EXPECT_NE(make_cache_key(a), make_cache_key(b));
}

/// An irregular-DAG anneal tune: the non-affine space the exhaustive
/// search cannot express, served through the same kTune pipeline.
Request dag_anneal_request(std::int64_t n, int pes) {
  Request req;
  req.kind = RequestKind::kTune;
  req.spec = std::make_shared<const fm::FunctionSpec>(
      algos::irregular_dag_spec(n, 3, 0xD46u));
  req.machine = fm::make_machine(pes, 1);
  req.inputs = {InputPlacement::at({0, 0})};
  req.fom = fm::FigureOfMerit::kTime;
  req.strategy = fm::StrategyKind::kAnneal;
  req.strategy_opts.chains = 2;
  req.strategy_opts.epochs = 6;
  req.strategy_opts.iters_per_epoch = 64;
  return req;
}

TEST(CacheKey, StrategyKindAndKnobsAreKeyedExecutionDetailIsNot) {
  const Request a = dag_anneal_request(12, 2);
  const CacheKey base = make_cache_key(a);

  Request b = a;  // a different driver is a different result
  b.strategy = fm::StrategyKind::kBeam;
  EXPECT_NE(make_cache_key(b), base);

  Request c = a;  // so is a different stream seed or budget
  c.strategy_opts.seed ^= 1;
  EXPECT_NE(make_cache_key(c), base);
  c = a;
  c.strategy_opts.epochs += 1;
  EXPECT_NE(make_cache_key(c), base);

  // Cancel hooks and the parallel backend cannot change the converged
  // answer (worker-count byte-identity), so they are not keyed.
  Request d = a;
  d.strategy_opts.cancel = [] { return false; };
  d.strategy_opts.num_workers = 7;
  EXPECT_EQ(make_cache_key(d), base);
}

// --- ResultCache ---

std::shared_ptr<const Response> dummy_response(double ops) {
  auto r = std::make_shared<Response>();
  r->cost.total_ops = ops;
  return r;
}

TEST(ResultCache, LruEvictsOldestAndCountsStats) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  const CacheKey k1{1, 1}, k2{2, 2}, k3{3, 3};
  cache.put(k1, dummy_response(1));
  cache.put(k2, dummy_response(2));
  ASSERT_NE(cache.get(k1), nullptr);  // k1 now MRU, k2 is LRU
  cache.put(k3, dummy_response(3));   // evicts k2
  EXPECT_EQ(cache.get(k2), nullptr);
  ASSERT_NE(cache.get(k1), nullptr);
  ASSERT_NE(cache.get(k3), nullptr);

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.75);
}

TEST(ResultCache, CapacityRemainderIsDistributedAcrossShards) {
  // Regression: capacity 10 over 8 shards used to round (truncating
  // dropped entries; the later ceil over-provisioned to 16 and
  // capacity() reported the inflated number).  The budget must be
  // honored exactly: shard caps sum to the requested total.
  ResultCache cache(/*capacity=*/10, /*shards=*/8);
  EXPECT_EQ(cache.capacity(), 10u);

  // Shard = key.hi % 8.  Offer 3 entries to every shard: the two
  // remainder-carrying shards keep 2 each, the rest keep 1 — exactly 10
  // resident entries and 14 evictions.
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      cache.put(CacheKey{s, i}, dummy_response(static_cast<double>(i)));
    }
  }
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 10u);
  EXPECT_EQ(st.evictions, 14u);

  // One-shard degenerate case: the whole budget lands in shard 0.
  ResultCache single(/*capacity=*/3, /*shards=*/1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    single.put(CacheKey{0, i}, dummy_response(static_cast<double>(i)));
  }
  EXPECT_EQ(single.stats().entries, 3u);
}

TEST(ResultCache, PutRefreshesExistingKey) {
  ResultCache cache(4, 2);
  const CacheKey k{7, 7};
  cache.put(k, dummy_response(1));
  cache.put(k, dummy_response(2));
  const auto hit = cache.get(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->cost.total_ops, 2.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- resumable search (fm layer) ---

TEST(SearchResume, CutPlusResumeCoversTheWholeSpace) {
  algos::SwScores s;
  const auto spec = algos::editdist_spec(8, 8, s);
  const fm::MachineConfig cfg = fm::make_machine(8, 1);
  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  proto.set_input(1, fm::InputHome::at({0, 0}));

  const fm::SearchResult full = fm::search_affine(spec, cfg, proto);
  ASSERT_TRUE(full.found);
  ASSERT_TRUE(full.exhausted);

  // Stop after 40 candidates, then resume from the recorded offset.
  fm::SearchOptions opts;
  std::uint64_t polled = 0;
  opts.cancel = [&polled] { return ++polled > 40; };
  const fm::SearchResult first = fm::search_affine(spec, cfg, proto, opts);
  EXPECT_FALSE(first.exhausted);
  EXPECT_LT(first.next_offset, full.next_offset);

  fm::SearchOptions rest;
  rest.resume_from = first.next_offset;
  const fm::SearchResult second = fm::search_affine(spec, cfg, proto, rest);
  EXPECT_TRUE(second.exhausted);
  EXPECT_EQ(second.next_offset, full.next_offset);
  EXPECT_EQ(first.enumerated + second.enumerated, full.enumerated);
  EXPECT_EQ(first.legal + second.legal, full.legal);

  // The better of the two windows is the uncut winner.
  const double best_merit =
      std::min(first.found ? first.best.merit
                           : std::numeric_limits<double>::infinity(),
               second.found ? second.best.merit
                            : std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(best_merit, full.best.merit);
}

// --- Service ---

TEST(Service, CostEvalMatchesDirectOracleAndCaches) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);

  const Request req = editdist_cost_request(8, 8);
  const fm::CostReport direct =
      fm::evaluate_cost(*req.spec, editdist_mapping(req), req.machine);

  const Response r1 = svc.call(req);
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.cost.makespan_cycles, direct.makespan_cycles);
  EXPECT_DOUBLE_EQ(r1.cost.total_energy().femtojoules(),
                   direct.total_energy().femtojoules());

  const Response r2 = svc.call(req);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.cost.makespan_cycles, direct.makespan_cycles);

  const MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_GE(snap.cache.hits, 1u);
}

TEST(Service, LegalityMatchesDirectVerify) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);

  Request req = editdist_cost_request(8, 8);
  req.kind = RequestKind::kLegality;
  const Response r = svc.call(req);
  ASSERT_TRUE(r.ok()) << r.error;
  const fm::LegalityReport direct =
      fm::verify(*req.spec, editdist_mapping(req), req.machine, req.verify);
  EXPECT_EQ(r.legality.ok, direct.ok);
  EXPECT_EQ(r.legality.total_violations(), direct.total_violations());

  // An illegal map (everything at cycle 0 on one PE) must report so.
  req.map = fm::AffineMap{.cols = 8, .rows = 1};
  const Response bad = svc.call(req);
  ASSERT_TRUE(bad.ok()) << bad.error;
  EXPECT_FALSE(bad.legality.ok);
  EXPECT_GT(bad.legality.total_violations(), 0u);
}

TEST(Service, TuneMatchesDirectSearch) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);

  Request req = editdist_cost_request(8, 8);
  req.kind = RequestKind::kTune;
  req.fom = fm::FigureOfMerit::kTime;

  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  proto.set_input(1, fm::InputHome::at({0, 0}));
  fm::SearchOptions direct_opts = req.search;
  direct_opts.fom = req.fom;
  const fm::SearchResult direct =
      fm::search_affine(*req.spec, req.machine, proto, direct_opts);
  ASSERT_TRUE(direct.found);

  const Response r = svc.call(req);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.search.found);
  EXPECT_TRUE(r.search.exhausted);
  EXPECT_FALSE(r.deadline_cut);
  EXPECT_DOUBLE_EQ(r.search.best.merit, direct.best.merit);
  EXPECT_EQ(r.cost.makespan_cycles, direct.best.cost.makespan_cycles);
  // The post-hoc execution check ran on the winner and found nothing.
  EXPECT_TRUE(r.exec_checked);
  EXPECT_TRUE(r.exec.empty());
  EXPECT_EQ(svc.metrics().exec_checks, 1u);
  EXPECT_EQ(svc.metrics().exec_failures, 0u);

  // Exhausted tune results are memoized.
  const Response again = svc.call(req);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_DOUBLE_EQ(again.search.best.merit, direct.best.merit);
}

TEST(Service, CompileCacheSharesTablesAcrossTunes) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);

  Request req = editdist_cost_request(8, 8);
  req.kind = RequestKind::kTune;
  req.fom = fm::FigureOfMerit::kTime;
  const Response r1 = svc.call(req);
  ASSERT_TRUE(r1.ok()) << r1.error;

  Request req2 = req;
  req2.fom = fm::FigureOfMerit::kEnergy;  // new result key, same triple
  const Response r2 = svc.call(req2);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_FALSE(r2.cache_hit);  // the *result* cache missed...

  const MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.compile_misses, 1u);  // ...but the compiled tables hit
  EXPECT_EQ(snap.compile_hits, 1u);
}

TEST(Service, ParallelTuneMatchesSerialAndRecordsWorkerMetrics) {
  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.max_tune_workers = 4;
  Service svc(cfg);

  Request req = editdist_cost_request(10, 10);
  req.kind = RequestKind::kTune;
  req.fom = fm::FigureOfMerit::kTime;
  req.tune_workers = 3;  // per-request ask, below the service cap

  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  proto.set_input(1, fm::InputHome::at({0, 0}));
  fm::SearchOptions serial = req.search;
  serial.fom = req.fom;  // scheduler left null: serial reference
  const fm::SearchResult direct =
      fm::search_affine(*req.spec, req.machine, proto, serial);
  ASSERT_TRUE(direct.found);

  const Response r = svc.call(req);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.search.found);
  EXPECT_TRUE(r.search.exhausted);
  // The parallel tune reproduces the serial answer exactly, including
  // the winner's enumeration slot.
  EXPECT_DOUBLE_EQ(r.search.best.merit, direct.best.merit);
  EXPECT_EQ(r.search.best.slot, direct.best.slot);
  EXPECT_EQ(r.search.enumerated, direct.enumerated);
  EXPECT_EQ(r.search.legal, direct.legal);
  // The lane count respected the per-request ask.
  EXPECT_GE(r.search.workers_used, 1u);
  EXPECT_LE(r.search.workers_used, 3u);

  const MetricsSnapshot snap = svc.metrics();
  EXPECT_GE(snap.tunes, 1u);
  EXPECT_GE(snap.mean_tune_workers, 1.0);
}

TEST(Service, DeadlineCutTuneReturnsLegalMappingBeforeDeadline) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  // The margin must absorb the candidates already in flight when the
  // cutoff fires plus the winner's verify/lint pass on the 64x64 domain
  // -- both ~10x dearer under a sanitizer, hence the generous slice.
  cfg.deadline_margin = 60ms * kTimeScale;
  Service svc(cfg);

  // A big search space (13 x 13 x 9 x 9 slots, each paying a
  // full-domain legality sweep) over a 64x64 domain: far more work than
  // the deadline allows even through the compiled fast path, so the cut
  // must trigger.  With both strings homed on PE (0,0) the pure
  // wavefront (t=i+j) blows the home link's bandwidth budget; the
  // time-stretched t=i+8j fits, and coefficient 8 rides second in the
  // list so that legal mapping enumerates within the first few slots
  // and the frontier is non-empty long before the cutoff -- even under
  // a sanitizer's ~10x slowdown.
  Request req = editdist_cost_request(64, 64);
  req.kind = RequestKind::kTune;
  req.search.space.time_coeffs = {1, 8, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 0};
  req.search.space.space_coeffs = {1, 0, -1, 2, -2, 3, -3, 4, -4};
  req.deadline = 150ms * kTimeScale;

  const auto t0 = std::chrono::steady_clock::now();
  const Response r = svc.call(req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.deadline_cut);
  EXPECT_FALSE(r.search.exhausted);
  EXPECT_LT(elapsed, req.deadline);  // answered strictly before the deadline
  ASSERT_TRUE(r.search.found);       // ...with a usable frontier

  // The best-so-far mapping must be genuinely legal.
  fm::Mapping best;
  best.set_computed(2, r.search.best.map.place_fn(),
                    r.search.best.map.time_fn());
  best.set_input(0, fm::InputHome::at({0, 0}));
  best.set_input(1, fm::InputHome::at({0, 0}));
  EXPECT_TRUE(fm::verify(*req.spec, best, req.machine).ok);

  // Deadline-cut results are NOT cached: a rerun recomputes.
  const Response again = svc.call(req);
  EXPECT_FALSE(again.cache_hit);
}

TEST(Service, StrategyTuneMatchesDirectSearchAndCaches) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);
  const Request req = dag_anneal_request(24, 4);

  // Serial direct reference: the service runs the same search over its
  // own scheduler, and worker-count byte-identity makes them agree.
  fm::Mapping proto;
  proto.set_input(0, fm::InputHome::at({0, 0}));
  fm::StrategyOptions direct_opts = req.strategy_opts;
  direct_opts.fom = req.fom;
  const fm::StrategyResult direct = fm::search_table(
      *req.spec, req.machine, proto, fm::StrategyKind::kAnneal, direct_opts);
  ASSERT_TRUE(direct.found);

  const Response r = svc.call(req);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.strategy.found);
  EXPECT_TRUE(r.strategy.completed);
  EXPECT_FALSE(r.deadline_cut);
  EXPECT_EQ(r.strategy.best.pe, direct.best.pe);
  EXPECT_EQ(r.strategy.best.cycle, direct.best.cycle);
  EXPECT_EQ(r.strategy.best.input_home, direct.best.input_home);
  EXPECT_EQ(r.strategy.merit, direct.merit);
  EXPECT_EQ(r.cost.makespan_cycles, direct.cost.makespan_cycles);
  // The winner is legal through the legacy verifier on the lowered map.
  EXPECT_TRUE(fm::verify(*req.spec,
                         fm::to_mapping(*req.spec, r.strategy.best),
                         req.machine)
                  .ok);
  // And through the independent execution checker.
  EXPECT_TRUE(r.exec_checked);
  EXPECT_TRUE(r.exec.empty());
  EXPECT_GE(svc.metrics().exec_checks, 1u);
  EXPECT_EQ(svc.metrics().exec_failures, 0u);

  // Completed strategy tunes are memoized like exhausted searches.
  const Response again = svc.call(req);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.strategy.merit, direct.merit);
}

TEST(Service, StrategyDeadlineCutReturnsBestSoFarUncached) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.deadline_margin = 40ms * kTimeScale;
  Service svc(cfg);

  // A budget far beyond the deadline (cancel is polled per epoch, so
  // the per-epoch batch bounds the overshoot): the cut must fire and
  // still answer with the best legal table so far.
  Request req = dag_anneal_request(64, 4);
  req.strategy_opts.chains = 2;
  req.strategy_opts.epochs = 2000;
  req.strategy_opts.iters_per_epoch = 4000;
  req.strategy_opts.stall_epochs = 2000;  // never stop on stall
  req.deadline = 120ms * kTimeScale;

  const auto t0 = std::chrono::steady_clock::now();
  const Response r = svc.call(req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.deadline_cut);
  EXPECT_FALSE(r.strategy.completed);
  EXPECT_LT(elapsed, req.deadline + cfg.deadline_margin);
  ASSERT_TRUE(r.strategy.found);
  EXPECT_LT(r.strategy.epochs_run, req.strategy_opts.epochs);
  EXPECT_TRUE(fm::verify(*req.spec,
                         fm::to_mapping(*req.spec, r.strategy.best),
                         req.machine)
                  .ok);

  // Deadline-cut strategy results are NOT cached: a rerun recomputes.
  const Response again = svc.call(req);
  EXPECT_FALSE(again.cache_hit);
}

TEST(Service, PipelineTuneMatchesDirectTunerAndCertifiesEveryStage) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  Service svc(cfg);

  Request req;
  req.kind = RequestKind::kPipelineTune;
  req.pipeline = std::make_shared<const fm::Pipeline>(
      algos::scan_filter_scan_pipeline(16));
  req.machine = fm::make_machine(4, 1);
  req.search.space.time_coeffs = {0, 1, 2};
  req.search.space.space_coeffs = {-1, 0, 1};
  req.pipeline_paired = true;

  // Direct oracle on the same options (the service adds only plumbing).
  fm::PipelineOptions direct_opts;
  direct_opts.fom = req.fom;
  direct_opts.search = req.search;
  direct_opts.pair_candidates = req.pipeline_pair_candidates;
  const fm::PipelineResult direct =
      fm::tune_pipeline_paired(*req.pipeline, req.machine, direct_opts);
  ASSERT_TRUE(direct.found);

  const Response r = svc.call(req);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.pipeline.found);
  EXPECT_TRUE(r.pipeline.completed);
  EXPECT_FALSE(r.deadline_cut);
  ASSERT_EQ(r.pipeline.stages.size(), 3u);
  EXPECT_DOUBLE_EQ(r.pipeline.merit, direct.merit);
  EXPECT_EQ(r.cost.makespan_cycles, direct.total.makespan_cycles);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(r.pipeline.stages[s].merit, direct.stages[s].merit)
        << "stage " << s;
  }
  // Every stage winner was certified against the relational model with
  // its producer-substituted input homes — and came back clean.
  EXPECT_TRUE(r.exec_checked);
  EXPECT_TRUE(r.exec.empty());
  EXPECT_EQ(svc.metrics().exec_checks, 3u);
  EXPECT_EQ(svc.metrics().exec_failures, 0u);

  // Completed pipeline tunes are memoized under the pipeline
  // fingerprint...
  const Response again = svc.call(req);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_DOUBLE_EQ(again.pipeline.merit, direct.merit);

  // ...and the greedy flavour is a *different* result key.
  Request greedy = req;
  greedy.pipeline_paired = false;
  const Response g = svc.call(greedy);
  ASSERT_TRUE(g.ok()) << g.error;
  EXPECT_FALSE(g.cache_hit);
  EXPECT_TRUE(g.pipeline.found);

  // Per-stage compiles went through the compile cache: the paired run
  // probes consumers under candidate layouts (distinct home
  // fingerprints => distinct keys), then certification and the greedy
  // rerun re-request the same triples and hit.
  const MetricsSnapshot snap = svc.metrics();
  EXPECT_GT(snap.compile_misses, 0u);
  EXPECT_GT(snap.compile_hits, 0u);
}

TEST(Service, EmptyPipelineYieldsErrorResponseNotThrow) {
  Service svc({.num_workers = 1});
  Request req;
  req.kind = RequestKind::kPipelineTune;  // pipeline left null
  const Response r = svc.call(req);
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("pipeline"), std::string::npos);
  Request empty;
  empty.kind = RequestKind::kPipelineTune;
  empty.pipeline = std::make_shared<const fm::Pipeline>();
  const Response r2 = svc.call(std::move(empty));
  EXPECT_EQ(r2.status, Status::kError);
}

TEST(Service, NullSpecYieldsErrorResponseNotThrow) {
  Service svc({.num_workers = 1});
  Request req;  // spec left null
  const Response r = svc.call(std::move(req));
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_FALSE(r.error.empty());
}

TEST(Service, OracleExceptionSurfacesAsErrorResponse) {
  Service svc({.num_workers = 1});
  // Two computed tensors: search_affine's precondition fails.
  auto spec = std::make_shared<fm::FunctionSpec>();
  const auto dom = fm::IndexDomain(4);
  spec->add_computed("a", dom, [](const fm::Point&) {
    return std::vector<fm::ValueRef>{};
  }, [](const fm::Point&, const std::vector<double>&) { return 0.0; });
  spec->add_computed("b", dom, [](const fm::Point&) {
    return std::vector<fm::ValueRef>{};
  }, [](const fm::Point&, const std::vector<double>&) { return 0.0; });

  Request req;
  req.kind = RequestKind::kTune;
  req.spec = spec;
  req.machine = fm::make_machine(2, 1);
  const Response r = svc.call(std::move(req));
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("computed"), std::string::npos);
}

TEST(Service, SubmitAfterShutdownIsRejectedWithRetryAfter) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  Service svc(cfg);
  svc.shutdown();
  const Response r = svc.call(editdist_cost_request(6, 6));
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_GT(r.retry_after.count(), 0);
}

TEST(Service, BatchedDuplicatesExecuteOnceAndAllWaitersAnswered) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.batch_linger = 2ms;
  Service svc(cfg);

  const Request req = editdist_cost_request(10, 10);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(svc.submit(req));
  std::size_t hits = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    hits += r.cache_hit ? 1 : 0;
  }
  // Whatever the batching raced to, the oracle ran at most a handful of
  // times for 12 identical requests (dedup + memoization).
  const CacheStats st = svc.cache_stats();
  EXPECT_GE(hits + st.hits, 1u);
  EXPECT_EQ(svc.metrics().completed, 12u);
}

// --- metrics export ---

TEST(Metrics, HistogramPercentilesAreMonotonic) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(std::chrono::microseconds(i));
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.percentile_us(0.50);
  const double p95 = h.percentile_us(0.95);
  const double p99 = h.percentile_us(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Power-of-two buckets: p50 of U[1,1000]us lands in (256,512]us.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
}

TEST(Metrics, HistogramEdgeCasesEmptyAndSingleSample) {
  // Empty histogram: every percentile is 0.
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile_us(0.50), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile_us(0.99), 0.0);

  // Regression: a single 1000ns observation lands in bucket [512, 1024)
  // and used to read back as the upper edge (1.024us — a 2x skew for a
  // value near the bucket floor).  The midpoint bounds any single
  // observation to [0.75x, 1.5x] of truth: 768ns here.
  LatencyHistogram one;
  one.record(std::chrono::nanoseconds(1000));
  EXPECT_EQ(one.count(), 1u);
  const double mid = 768.0 / 1000.0;
  EXPECT_DOUBLE_EQ(one.percentile_us(0.0), mid);
  EXPECT_DOUBLE_EQ(one.percentile_us(0.50), mid);
  EXPECT_DOUBLE_EQ(one.percentile_us(1.0), mid);

  // A zero-latency sample sits in the dedicated 0ns bucket.
  LatencyHistogram zero;
  zero.record(std::chrono::nanoseconds(0));
  EXPECT_DOUBLE_EQ(zero.percentile_us(0.50), 0.0);

  // The top bucket must follow the same midpoint convention — its old
  // overflow fallback returned the bucket's *upper edge* (2^63 ns),
  // breaking the [0.75x, 1.5x] bound every other bucket honours.  The
  // largest representable latency lands in bucket 63 = [2^62, 2^63).
  LatencyHistogram top;
  top.record(std::chrono::nanoseconds::max());
  const double top_mid_us =
      (std::ldexp(1.0, 62) + std::ldexp(1.0, 63)) / 2.0 / 1000.0;
  EXPECT_DOUBLE_EQ(top.percentile_us(0.50), top_mid_us);
  EXPECT_DOUBLE_EQ(top.percentile_us(1.0), top_mid_us);
}

TEST(Metrics, JsonExportIsWellFormedAndComplete) {
  Metrics m;
  m.on_submit();
  m.on_complete(1ms, false, false);
  const MetricsSnapshot snap = m.snapshot(3, CacheStats{10, 2, 1, 5});
  const std::string json = metrics_json(snap);
  EXPECT_NE(json.find("\"metric\": \"submitted\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"p999_us\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"tunes\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"mean_tune_workers\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"tune_steals\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"compile_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"compile_misses\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"exec_checks\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"exec_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"trace_dropped\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Balanced braces: one object per row.
  const auto count = [&](char c) {
    return std::count(json.begin(), json.end(), c);
  };
  EXPECT_EQ(count('{'), count('}'));
  EXPECT_EQ(count('{'), 26);
}

TEST(Metrics, OnTuneAggregatesWorkersAndSteals) {
  Metrics m;
  m.on_tune(/*workers_used=*/4, /*steals=*/10);
  m.on_tune(/*workers_used=*/2, /*steals=*/3);
  const MetricsSnapshot snap = m.snapshot(0, CacheStats{});
  EXPECT_EQ(snap.tunes, 2u);
  EXPECT_DOUBLE_EQ(snap.mean_tune_workers, 3.0);
  EXPECT_EQ(snap.tune_steals, 13u);
}

TEST(Metrics, TableJsonEscapesStrings) {
  Table t({"metric", "value"});
  t.add_row({std::string("we\"ird\nname"), std::int64_t{1}});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_NE(os.str().find("we\\\"ird\\nname"), std::string::npos);
}

TEST(Metrics, TableJsonEscapesHeadersAndControlChars) {
  // Headers pass through the same escaper as cells — a column name with
  // a quote or backslash must not produce unparseable JSON keys.
  Table t({"met\"ric\\name", "value"});
  t.add_row({std::string("tab\there\x01"), std::string("back\\slash\r")});
  std::ostringstream os;
  t.print_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"met\\\"ric\\\\name\""), std::string::npos);
  EXPECT_NE(json.find("tab\\there\\u0001"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash\\r"), std::string::npos);
  // No raw quote/control byte survives outside the JSON structure: the
  // only unescaped quotes left are the key/value delimiters.
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
}

TEST(Metrics, HistogramMergeMatchesUnionOracle) {
  // merge() must behave as if one histogram had recorded the union of
  // the samples: buckets are exact counters, so count addition is
  // lossless — unlike averaging per-shard percentiles, which is wrong
  // for any non-uniform split (shard A: fast cache hits, shard B: slow
  // tunes).
  std::vector<std::int64_t> fast, slow;
  for (int i = 1; i <= 200; ++i) fast.push_back(500 + 13 * i);     // ~µs
  for (int i = 1; i <= 50; ++i) slow.push_back(800'000 + 7'000 * i);  // ~ms

  LatencyHistogram a, b, merged_oracle;
  for (const std::int64_t ns : fast) {
    a.record(std::chrono::nanoseconds(ns));
    merged_oracle.record(std::chrono::nanoseconds(ns));
  }
  for (const std::int64_t ns : slow) {
    b.record(std::chrono::nanoseconds(ns));
    merged_oracle.record(std::chrono::nanoseconds(ns));
  }

  LatencyHistogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), 250u);
  EXPECT_EQ(merged.counts(), merged_oracle.counts());
  for (const double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.percentile_us(q), merged_oracle.percentile_us(q))
        << "q=" << q;
  }
  // The non-uniform split makes the naive aggregation observably wrong:
  // the true fleet p95 is dominated by shard B's tail, far from the
  // mean of the two per-shard p95s.
  const double naive =
      (a.percentile_us(0.95) + b.percentile_us(0.95)) / 2.0;
  EXPECT_NE(merged.percentile_us(0.95), naive);

  // add_counts: the wire-crossing form of merge.
  LatencyHistogram rebuilt;
  rebuilt.add_counts(a.counts());
  rebuilt.add_counts(b.counts());
  EXPECT_EQ(rebuilt.counts(), merged_oracle.counts());
  // A peer with more buckets than the local convention must be refused,
  // not silently truncated.
  std::vector<std::uint64_t> skewed(LatencyHistogram::kNumBuckets + 1, 0);
  EXPECT_THROW(rebuilt.add_counts(skewed), std::invalid_argument);
}

}  // namespace
}  // namespace harmony::serve
