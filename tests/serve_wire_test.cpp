// Wire codec, routing identity, transports, and spec-catalog rebuild
// equivalence (DESIGN.md §17, ISSUE 10).
//
// The distributed tier's correctness rests on four codec-level facts
// pinned here:
//   * every message body round-trips bit-exactly (re-encoding a decode
//     reproduces the original bytes — the encoding is canonical);
//   * truncated frames throw WireError instead of reading past the end;
//   * routing_key() covers the semantic fields and *excludes* the QoS
//     fields, so a deadline change never migrates a key off its warm
//     shard;
//   * the router's spec rebuild and the shard's spec rebuild agree on
//     make_cache_key bit for bit — the property that lets a shard's
//     result cache serve a key the router hashed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/request.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"

namespace harmony::serve {
namespace {

WireRequest sample_request() {
  WireRequest req;
  req.kind = RequestKind::kTune;
  req.spec = "editdist:6x5";
  req.machine_cols = 6;
  req.machine_rows = 2;
  req.cycle_ps = 250.0;
  req.pe_capacity_values = 4096;
  req.link_bits_per_cycle = 128.0;
  req.local_access_pitch_fraction = 0.5;
  req.fom = fm::FigureOfMerit::kTime;
  req.inputs = {InputPlacement::at({0, 0}), InputPlacement::dram()};
  req.map = fm::AffineMap{.ti = 1, .tj = 1, .xi = 1, .cols = 6, .rows = 1};
  req.check_storage = false;
  req.check_bandwidth = true;
  req.max_messages = 16;
  req.time_coeffs = {-2, -1, 0, 1, 2};
  req.space_coeffs = {0, 1};
  req.search_y = false;
  req.quick_sample = 32;
  req.makespan_slack = 3.5;
  req.top_k = 3;
  req.deadline_ns = 5'000'000;
  req.tune_workers = 4;
  return req;
}

std::vector<std::uint8_t> encoded(const WireRequest& req) {
  Writer w;
  encode(w, req);
  return w.take();
}

WireResponse sample_response() {
  WireResponse resp;
  resp.status = static_cast<std::uint8_t>(Status::kOk);
  resp.kind = static_cast<std::uint8_t>(RequestKind::kTune);
  resp.makespan_cycles = 42;
  resp.makespan_ps = 8400.0;
  resp.compute_fj = 1.5;
  resp.onchip_fj = 2.5;
  resp.dram_fj = 3.5;
  resp.messages = 7;
  resp.bit_hops = 224;
  resp.total_ops = 30.0;
  resp.found = true;
  resp.best_map = fm::AffineMap{.ti = 1, .tj = 1, .xi = 1, .cols = 6};
  resp.best_makespan_cycles = 42;
  resp.best_merit = 1.25e6;
  resp.enumerated = 1000;
  resp.legal = 12;
  resp.workers_used = 4;
  resp.lint.push_back(WireDiagnostic{"MAP001", 1, "H", 3, 7, "msg", "hint"});
  resp.exec_checked = true;
  resp.latency_ns = 123456;
  resp.shard = 2;
  resp.stolen = true;
  return resp;
}

TEST(WireCodec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.b(true);
  w.f64(-1.5e-300);
  w.str("hello, \0 wire");  // embedded NUL is cut by the literal; fine
  w.vec_i64({-3, 0, 1LL << 40});
  w.bytes({1, 2, 3});

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.f64(), -1.5e-300);
  EXPECT_EQ(r.str(), "hello, ");
  EXPECT_EQ(r.vec_i64(), (std::vector<std::int64_t>{-3, 0, 1LL << 40}));
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireCodec, RequestEncodingIsCanonical) {
  const WireRequest req = sample_request();
  const std::vector<std::uint8_t> bytes = encoded(req);

  Reader r(bytes);
  const WireRequest back = decode_request(r);
  EXPECT_NO_THROW(r.expect_end());

  // Spot-check the fields a byte comparison cannot localize...
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.spec, req.spec);
  EXPECT_EQ(back.machine_cols, req.machine_cols);
  EXPECT_EQ(back.cycle_ps, req.cycle_ps);
  EXPECT_EQ(back.inputs.size(), 2u);
  EXPECT_EQ(back.inputs[0].kind, InputPlacement::Kind::kPe);
  EXPECT_EQ(back.inputs[1].kind, InputPlacement::Kind::kDram);
  EXPECT_EQ(back.map.cols, 6);
  EXPECT_EQ(back.time_coeffs, req.time_coeffs);
  EXPECT_EQ(back.deadline_ns, req.deadline_ns);
  EXPECT_EQ(back.tune_workers, req.tune_workers);
  // ...then pin canonicality: re-encoding the decode is bit-identical.
  EXPECT_EQ(encoded(back), bytes);
}

TEST(WireCodec, ResponseEncodingIsCanonical) {
  const WireResponse resp = sample_response();
  Writer w;
  encode(w, resp);
  const std::vector<std::uint8_t> bytes = w.data();

  Reader r(bytes);
  const WireResponse back = decode_response(r);
  EXPECT_NO_THROW(r.expect_end());
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.makespan_cycles, resp.makespan_cycles);
  EXPECT_EQ(back.best_merit, resp.best_merit);
  ASSERT_EQ(back.lint.size(), 1u);
  EXPECT_EQ(back.lint[0].rule_id, "MAP001");
  EXPECT_EQ(back.lint[0].pe, 3);

  Writer w2;
  encode(w2, back);
  EXPECT_EQ(w2.data(), bytes);
}

TEST(WireCodec, MetricsEncodingIsCanonical) {
  WireMetrics m;
  m.submitted = 100;
  m.completed = 98;
  m.errors = 2;
  m.cache_hits = 40;
  m.compile_misses = 3;
  m.latency_buckets.assign(LatencyHistogram::kNumBuckets, 0);
  m.latency_buckets[10] = 55;
  m.latency_buckets[20] = 7;

  Writer w;
  encode(w, m);
  Reader r(w.data());
  const WireMetrics back = decode_metrics(r);
  EXPECT_NO_THROW(r.expect_end());
  EXPECT_EQ(back.completed, 98u);
  EXPECT_EQ(back.latency_buckets, m.latency_buckets);

  Writer w2;
  encode(w2, back);
  EXPECT_EQ(w2.data(), w.data());
}

TEST(WireCodec, TruncatedDecodeThrows) {
  const std::vector<std::uint8_t> bytes = encoded(sample_request());
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    Reader r(bytes.data(), len);
    EXPECT_THROW((void)decode_request(r), WireError) << "len=" << len;
  }
}

TEST(WireCodec, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = encoded(sample_request());
  bytes.push_back(0x00);
  Reader r(bytes);
  (void)decode_request(r);
  EXPECT_THROW(r.expect_end(), WireError);
}

TEST(RoutingKey, ExcludesQoSFields) {
  const WireRequest base = sample_request();
  const CacheKey key = routing_key(base);

  WireRequest patient = base;
  patient.deadline_ns = 0;
  patient.tune_workers = 0;
  EXPECT_EQ(routing_key(patient), key)
      << "deadline/workers are QoS, not identity";

  WireRequest hurried = base;
  hurried.deadline_ns = 1;
  hurried.tune_workers = 16;
  EXPECT_EQ(routing_key(hurried), key);
}

TEST(RoutingKey, CoversSemanticFields) {
  const WireRequest base = sample_request();
  const CacheKey key = routing_key(base);

  WireRequest other_spec = base;
  other_spec.spec = "editdist:6x6";
  EXPECT_NE(routing_key(other_spec), key);

  WireRequest other_map = base;
  other_map.map.tj = 2;
  EXPECT_NE(routing_key(other_map), key);

  WireRequest other_machine = base;
  other_machine.machine_cols = 7;
  EXPECT_NE(routing_key(other_machine), key);

  WireRequest other_kind = base;
  other_kind.kind = RequestKind::kCostEval;
  EXPECT_NE(routing_key(other_kind), key);
}

TEST(SemanticBytes, IgnoresDeliveryMetadataOnly) {
  const WireResponse a = sample_response();
  WireResponse b = a;
  // Delivery metadata: everything about *how* the answer arrived.
  b.cache_hit = !a.cache_hit;
  b.latency_ns = a.latency_ns + 999;
  b.workers_used = a.workers_used + 3;
  b.shard = a.shard + 1;
  b.stolen = !a.stolen;
  b.coalesced = !a.coalesced;
  EXPECT_EQ(semantic_bytes(a), semantic_bytes(b));

  WireResponse c = a;
  c.makespan_cycles += 1;
  EXPECT_NE(semantic_bytes(a), semantic_bytes(c));
}

TEST(Snapshot, RoundTripsAndChecksVersion) {
  CacheSnapshot snap;
  snap.entries.push_back(SnapshotEntry{{1, 2, 3}, {4, 5}});
  snap.entries.push_back(SnapshotEntry{{9}, {}});
  const std::vector<std::uint8_t> bytes = encode(snap);
  const CacheSnapshot back = decode_snapshot(bytes);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].request, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(back.entries[0].response, (std::vector<std::uint8_t>{4, 5}));
  EXPECT_EQ(back.entries[1].response, std::vector<std::uint8_t>{});

  std::vector<std::uint8_t> skewed = bytes;
  skewed[0] = 0xfe;  // version byte
  EXPECT_THROW((void)decode_snapshot(skewed), WireError);
}

// ---------------------------------------------------------------------
// Transports: the same Frame crosses both, byte-for-byte.
// ---------------------------------------------------------------------

void exercise_channel(const ChannelPair& pair) {
  Frame big;
  big.type = MsgType::kSubmit;
  big.id = 0x1122334455667788ULL;
  big.body.resize(100'000);
  for (std::size_t i = 0; i < big.body.size(); ++i) {
    big.body[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(pair.left->send(big));
  ASSERT_TRUE(pair.left->send(Frame{MsgType::kMetricsGet, 2, {}}));

  Frame got;
  ASSERT_TRUE(pair.right->recv(got));
  EXPECT_EQ(got.type, MsgType::kSubmit);
  EXPECT_EQ(got.id, big.id);
  EXPECT_EQ(got.body, big.body);
  ASSERT_TRUE(pair.right->recv(got));
  EXPECT_EQ(got.type, MsgType::kMetricsGet);
  EXPECT_TRUE(got.body.empty());

  // Reverse direction.
  ASSERT_TRUE(pair.right->send(Frame{MsgType::kReply, 3, {0xaa}}));
  ASSERT_TRUE(pair.left->recv(got));
  EXPECT_EQ(got.type, MsgType::kReply);
  EXPECT_EQ(got.body, std::vector<std::uint8_t>{0xaa});

  // Close: frames sent before the close still drain, then recv reports
  // EOF — the property the worker relies on to finish in-flight work.
  ASSERT_TRUE(pair.left->send(Frame{MsgType::kShutdown, 4, {}}));
  pair.left->close();
  ASSERT_TRUE(pair.right->recv(got));
  EXPECT_EQ(got.type, MsgType::kShutdown);
  EXPECT_FALSE(pair.right->recv(got));
  EXPECT_FALSE(pair.right->send(Frame{MsgType::kReply, 5, {}}));
}

TEST(Transport, LoopbackDeliversFramesAndDrainsOnClose) {
  exercise_channel(make_loopback_pair());
}

TEST(Transport, SocketpairDeliversFramesAndDrainsOnClose) {
  exercise_channel(make_socket_pair());
}

TEST(Transport, SocketpairCrossesThreads) {
  const ChannelPair pair = make_socket_pair();
  constexpr int kFrames = 200;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      Frame f{MsgType::kSubmit, static_cast<std::uint64_t>(i), {}};
      f.body.assign(static_cast<std::size_t>(i % 17) * 100, 0x5c);
      ASSERT_TRUE(pair.left->send(f));
    }
    pair.left->close();
  });
  Frame got;
  int received = 0;
  while (pair.right->recv(got)) {
    EXPECT_EQ(got.id, static_cast<std::uint64_t>(received));
    EXPECT_EQ(got.body.size(), static_cast<std::size_t>(received % 17) * 100);
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
}

// ---------------------------------------------------------------------
// Spec catalog: both ends rebuild the same Request.
// ---------------------------------------------------------------------

TEST(SpecCatalog, RebuildAgreesOnCacheKeyAcrossTheWire) {
  WireRequest wire = sample_request();
  wire.kind = RequestKind::kCostEval;

  // Router side: rebuild from the in-memory WireRequest.
  SpecCatalog router_catalog;
  const Request router_view = to_request(wire, router_catalog);

  // Shard side: rebuild from the *decoded* frame, in a fresh catalog.
  const std::vector<std::uint8_t> bytes = encoded(wire);
  Reader r(bytes);
  const WireRequest off_the_wire = decode_request(r);
  SpecCatalog shard_catalog;
  const Request shard_view = to_request(off_the_wire, shard_catalog);

  EXPECT_EQ(make_cache_key(router_view), make_cache_key(shard_view));
  EXPECT_EQ(make_compile_key(router_view), make_compile_key(shard_view));
}

TEST(SpecCatalog, AllFamiliesBuildAndMemoize) {
  SpecCatalog catalog;
  for (const char* name : {"editdist:4x5", "stencil:16,4", "conv:24,3",
                           "matmul:4", "irregular:12,3,7"}) {
    const auto first = catalog.spec(name);
    ASSERT_NE(first, nullptr) << name;
    // Memoized: the second probe is the same object, not a rebuild.
    EXPECT_EQ(catalog.spec(name), first) << name;
  }
}

TEST(SpecCatalog, RejectsUnknownAndMalformedNames) {
  SpecCatalog catalog;
  EXPECT_THROW((void)catalog.spec("bogus:3"), WireError);
  EXPECT_THROW((void)catalog.spec("editdist"), WireError);
  EXPECT_THROW((void)catalog.spec("editdist:4"), WireError);
  EXPECT_THROW((void)catalog.spec("editdist:4x-2"), WireError);
  EXPECT_THROW((void)catalog.spec("matmul:abc"), WireError);
  EXPECT_THROW((void)catalog.spec("irregular:12,3"), WireError);
}

TEST(SpecCatalog, ToRequestAppliesMachineOverrides) {
  SpecCatalog catalog;
  const WireRequest wire = sample_request();
  const Request req = to_request(wire, catalog);
  EXPECT_EQ(req.machine.geom.cols(), 6);
  EXPECT_EQ(req.machine.geom.rows(), 2);
  EXPECT_EQ(req.machine.cycle.picoseconds(), 250.0);
  EXPECT_EQ(req.machine.pe_capacity_values, 4096);
  EXPECT_EQ(req.machine.link_bits_per_cycle, 128.0);
  EXPECT_EQ(req.fom, fm::FigureOfMerit::kTime);
  EXPECT_EQ(req.search.space.time_coeffs, wire.time_coeffs);
  EXPECT_FALSE(req.search.space.search_y);
  EXPECT_EQ(req.deadline.count(), wire.deadline_ns);
}

}  // namespace
}  // namespace harmony::serve
