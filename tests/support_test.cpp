// Unit tests for src/support: units, rng, stats, table.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace harmony {
namespace {

TEST(Units, EnergyArithmeticAndConversions) {
  const Energy a = Energy::femtojoules(1500.0);
  EXPECT_DOUBLE_EQ(a.picojoules(), 1.5);
  EXPECT_DOUBLE_EQ(Energy::picojoules(2.0).femtojoules(), 2000.0);
  EXPECT_DOUBLE_EQ(Energy::nanojoules(1.0).femtojoules(), 1e6);
  const Energy b = a + Energy::femtojoules(500.0);
  EXPECT_DOUBLE_EQ(b.femtojoules(), 2000.0);
  EXPECT_DOUBLE_EQ((b - a).femtojoules(), 500.0);
  EXPECT_DOUBLE_EQ((b * 2.0).femtojoules(), 4000.0);
  EXPECT_DOUBLE_EQ(b / a, 2000.0 / 1500.0);
}

TEST(Units, TimeOrderingAndAccumulation) {
  Time t = Time::zero();
  t += Time::picoseconds(250.0);
  t += Time::nanoseconds(1.0);
  EXPECT_DOUBLE_EQ(t.picoseconds(), 1250.0);
  EXPECT_LT(Time::picoseconds(1.0), Time::picoseconds(2.0));
  EXPECT_GT(Time::nanoseconds(1.0), Time::picoseconds(999.0));
}

TEST(Units, AreaSideAndDiagonal) {
  const Area die = Area::mm2(800.0);
  EXPECT_NEAR(die.side().millimetres(), std::sqrt(800.0), 1e-12);
  EXPECT_NEAR(die.diagonal().millimetres(), std::sqrt(1600.0), 1e-12);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Energy::femtojoules(16.0) << " / " << Time::picoseconds(200.0);
  EXPECT_EQ(os.str(), "16 fJ / 200 ps");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

// Stream-stability pins: the first outputs of every generator entry
// point for fixed seeds, frozen as literals.  The stochastic mapping
// search (fm/strategy) promises byte-identical results for a fixed
// seed, which holds only while these streams never change — treat a
// failure here as an API break, not a test to update casually.
TEST(Rng, StreamStabilityGoldenValues) {
  {
    Rng r(1);
    const std::uint64_t want[4] = {
        0xb3f2af6d0fc710c5ULL, 0x853b559647364ceaULL,
        0x92f89756082a4514ULL, 0x642e1c7bc266a3a7ULL};
    for (const std::uint64_t w : want) EXPECT_EQ(r.next_u64(), w);
  }
  {
    Rng r(0x5eed);
    const std::uint64_t want[4] = {
        0xef33f17055244b74ULL, 0xe1f591112fb5051bULL,
        0xd8ab05640214863aULL, 0xf985e1f2fb897b03ULL};
    for (const std::uint64_t w : want) EXPECT_EQ(r.next_u64(), w);
  }
  {
    Rng r(42);
    const std::int64_t want[8] = {-9, -3, 4, 9, 10, 6, 5, 7};
    for (const std::int64_t w : want) EXPECT_EQ(r.next_int(-10, 10), w);
  }
  {
    Rng r(7);
    const std::uint64_t want[8] = {70, 27, 83, 98, 99, 87, 6, 10};
    for (const std::uint64_t w : want) EXPECT_EQ(r.next_below(100), w);
  }
  {
    Rng r(9);
    EXPECT_EQ(r.next_double(), 0.0025834396857136177);
    EXPECT_EQ(r.next_double(), 0.25148937241585745);
    EXPECT_EQ(r.next_double(), 0.13246225011289547);
    EXPECT_EQ(r.next_double(), 0.73269442537087415);
  }
}

TEST(Rng, SplitStreamsArePinnedAndIndependent) {
  // split() must advance the parent exactly one u64 and derive the
  // child from that draw alone: the parent's stream after two splits
  // continues exactly where two plain draws would have left it.
  Rng root(0x5eed);
  Rng a = root.split();
  Rng b = root.split();
  EXPECT_EQ(a.next_u64(), 0x4aa229f62d79fff7ULL);
  EXPECT_EQ(a.next_u64(), 0x9eca27ca3d7c11b1ULL);
  EXPECT_EQ(b.next_u64(), 0xb5948f1486dcbd9dULL);
  EXPECT_EQ(b.next_u64(), 0xc0145265b68af4ecULL);
  EXPECT_EQ(root.next_u64(), 0xd8ab05640214863aULL);  // 3rd draw of 0x5eed
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  const auto p = rng.permutation(257);
  std::vector<char> seen(257, 0);
  for (auto v : p) {
    ASSERT_LT(v, 257u);
    ASSERT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, RejectsEmptyRanges) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
  EXPECT_THROW(rng.next_int(3, 2), InvalidArgument);
}

// Regression for signed-overflow UB in next_int: `hi - lo` overflowed
// whenever the range spanned more than half the int64 domain, and
// `lo + offset` overflowed on the full-range path.  These ranges are
// exactly the ones the old arithmetic tripped on; the check.sh UBSan
// leg runs this test, so any reintroduced overflow fails loudly.
TEST(Rng, NextIntFullDomainIsDefinedAndMixesSigns) {
  Rng rng(17);
  bool saw_neg = false;
  bool saw_pos = false;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.next_int(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max());
    saw_neg = saw_neg || v < 0;
    saw_pos = saw_pos || v > 0;
  }
  // 200 uniform draws land on both signs with probability ~1 - 2^-199.
  EXPECT_TRUE(saw_neg);
  EXPECT_TRUE(saw_pos);
}

TEST(Rng, NextIntHalfDomainRangesStayInBounds) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    // Width kMax - kMin' > int64 max: the subtraction itself was the UB.
    EXPECT_LE(rng.next_int(kMin, 0), 0);
    EXPECT_GE(rng.next_int(-1, kMax), -1);
    const std::int64_t v = rng.next_int(kMin + 1, kMax - 1);
    EXPECT_GT(v, kMin);
    EXPECT_LT(v, kMax);
  }
}

TEST(Rng, NextIntSingleValueRangesAtTheExtremes) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(23);
  EXPECT_EQ(rng.next_int(kMin, kMin), kMin);
  EXPECT_EQ(rng.next_int(kMax, kMax), kMax);
  EXPECT_EQ(rng.next_int(-7, -7), -7);
}

TEST(Rng, NextIntStreamUnchangedByUnsignedReformulation) {
  // The unsigned rewrite must be value-identical to the old behaviour on
  // ranges the old code handled without UB: same seed, same draws.
  Rng a(29);
  Rng b(29);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t lo = -50 + i;
    ASSERT_EQ(a.next_int(lo, lo + 100),
              static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(lo) + b.next_below(101)));
  }
}

TEST(Stats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-5.0, 5.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_THROW((void)percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW((void)percentile(v, 1.5), InvalidArgument);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW((void)geometric_mean({1.0, -1.0}), InvalidArgument);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Table, RendersAlignedAscii) {
  Table t({"name", "value"});
  t.title("demo").add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("beta"), 3.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("say \"hi\"")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), InvalidArgument);
}

TEST(Error, AssertAndRequireBehaviour) {
  EXPECT_THROW([] { HARMONY_ASSERT(1 == 2); }(), std::logic_error);
  EXPECT_THROW([] { HARMONY_REQUIRE(false, "nope"); }(), InvalidArgument);
  EXPECT_NO_THROW([] { HARMONY_ASSERT(true); }());
}

}  // namespace
}  // namespace harmony
