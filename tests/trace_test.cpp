// harmony::trace: ring-buffer semantics (drop-oldest + counters),
// exporter correctness (Chrome trace-event JSON schema, summarizer
// busy-time and critical-path identities), zero-cost disabled mode,
// concurrent writers (the TSan target), and the instrumentation wired
// into sched::Scheduler, fm::search_affine, and serve::Service.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/editdist.hpp"
#include "fm/idioms.hpp"
#include "fm/search.hpp"
#include "sched/scheduler.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace harmony::trace {
namespace {

// ---------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, enough to validate
// the exporter's output structurally (no external JSON dependency).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    if (!ok() || pos_ >= text_.size()) {
      fail("expected value");
      return v;
    }
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = string();
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    return number();
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    if (pos_ == start) {
      fail("expected number");
      return v;
    }
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      fail("malformed number");
    }
    return v;
  }

  std::string string() {
    if (!consume('"')) fail("expected string");
    std::string out;
    while (ok() && pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("truncated escape");
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            } else {
              pos_ += 4;  // validated length only; value not needed here
              out += '?';
            }
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return out;
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (!consume('[')) fail("expected array");
    skip_ws();
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (ok() && consume(','));
    if (!consume(']')) fail("unterminated array");
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (!consume('{')) fail("expected object");
    skip_ws();
    if (consume('}')) return v;
    do {
      skip_ws();
      std::string key = string();
      if (!consume(':')) fail("expected ':'");
      v.object.emplace(std::move(key), value());
    } while (ok() && consume(','));
    if (!consume('}')) fail("unterminated object");
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------

std::vector<Event> spans_named(const Capture& cap, const char* cat,
                               const char* name) {
  std::vector<Event> out;
  for (const Event& e : cap.events) {
    if (e.kind == EventKind::kSpan && std::string(e.cat) == cat &&
        std::string(e.name) == name) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(Trace, DisabledByDefaultAndEmitIsANoOp) {
  EXPECT_FALSE(enabled());
  // Event sites outside any session must be safe no-ops.
  emit_span("test", "orphan", 0, 10);
  emit_counter("test", "orphan", 42);
  { Span s("test", "orphan"); }
  TraceSession session;
  session.stop();
  const Capture cap = session.capture();
  EXPECT_EQ(cap.events.size(), 0u);
  EXPECT_EQ(cap.dropped, 0u);
}

TEST(Trace, SessionCapturesSpansCountersAndThreadNames) {
  set_thread_name("trace-test-main");
  TraceSession session;
  EXPECT_TRUE(enabled());
  emit_span("cat", "alpha", 100, 200, /*id=*/7, /*arg0=*/1, /*arg1=*/2);
  emit_counter("cat", "gauge", 99);
  { Span s("cat", "scoped", 3); }
  session.stop();
  EXPECT_FALSE(enabled());

  const Capture cap = session.capture();
  ASSERT_EQ(cap.events.size(), 3u);
  const auto alpha = spans_named(cap, "cat", "alpha");
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_EQ(alpha[0].begin_ns, 100u);
  EXPECT_EQ(alpha[0].end_ns, 200u);
  EXPECT_EQ(alpha[0].id, 7u);
  EXPECT_EQ(alpha[0].arg0, 1u);
  EXPECT_EQ(alpha[0].arg1, 2u);
  EXPECT_EQ(spans_named(cap, "cat", "scoped").size(), 1u);
  bool saw_counter = false;
  for (const Event& e : cap.events) {
    if (e.kind == EventKind::kCounter) {
      saw_counter = true;
      EXPECT_EQ(e.arg0, 99u);
    }
  }
  EXPECT_TRUE(saw_counter);
  bool saw_name = false;
  for (const CapturedThread& t : cap.threads) {
    if (t.name == "trace-test-main") saw_name = true;
  }
  EXPECT_TRUE(saw_name);
  // Events are time-sorted.
  for (std::size_t i = 1; i < cap.events.size(); ++i) {
    EXPECT_LE(cap.events[i - 1].begin_ns, cap.events[i].begin_ns);
  }
}

TEST(Trace, RingDropsOldestAndCountsDropped) {
  TraceSession session(/*events_per_thread=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    emit_span("ring", "e", i, i + 1, /*id=*/i);
  }
  EXPECT_EQ(dropped_total(), 12u);
  session.stop();
  const Capture cap = session.capture();
  ASSERT_EQ(cap.events.size(), 8u);
  EXPECT_EQ(cap.dropped, 12u);
  // The *newest* 8 events survive, in order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cap.events[i].id, 12u + i);
  }
}

TEST(Trace, SecondSessionResetsCountsAndCapacity) {
  {
    TraceSession first(/*events_per_thread=*/4);
    for (int i = 0; i < 10; ++i) emit_span("a", "x", i, i + 1);
    EXPECT_EQ(dropped_total(), 6u);
  }
  TraceSession second(/*events_per_thread=*/64);
  EXPECT_EQ(dropped_total(), 0u);
  emit_span("b", "y", 1, 2);
  second.stop();
  const Capture cap = second.capture();
  ASSERT_EQ(cap.events.size(), 1u);
  EXPECT_EQ(std::string(cap.events[0].cat), "b");
  EXPECT_EQ(cap.dropped, 0u);
}

TEST(Trace, CaptureBeforeStopThrows) {
  TraceSession session;
  EXPECT_THROW((void)session.capture(), std::exception);
  session.stop();
  EXPECT_NO_THROW((void)session.capture());
}

TEST(Trace, SecondConcurrentSessionThrows) {
  TraceSession session;
  EXPECT_THROW(TraceSession another, std::exception);
  // The failed constructor must not have disabled the active session.
  EXPECT_TRUE(enabled());
}

TEST(TraceExport, ChromeJsonIsValidTraceEventSchema) {
  set_thread_name("json-writer");
  TraceSession session;
  emit_span("sched", "run", 1000, 2500, /*id=*/1, /*arg0=*/3);
  emit_span("serve", "admit", 2000, 2200, /*id=*/2);
  emit_counter("serve", "queue_depth", 5);
  session.stop();
  const Capture cap = session.capture();

  std::ostringstream os;
  write_chrome_json(os, cap);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error() << "\n" << os.str();

  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  // 3 events + 1 thread_name metadata record.
  ASSERT_EQ(events.array.size(), 4u);

  std::size_t spans = 0, counters = 0, metas = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    const std::string ph = e.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "C" || ph == "M") << ph;
    if (ph == "X") {
      ++spans;
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("dur"));
      ASSERT_TRUE(e.has("cat"));
      ASSERT_TRUE(e.has("args"));
      EXPECT_EQ(e.at("ts").type, JsonValue::Type::kNumber);
      EXPECT_EQ(e.at("dur").type, JsonValue::Type::kNumber);
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "C") {
      ++counters;
      ASSERT_TRUE(e.has("args"));
      ASSERT_TRUE(e.at("args").has("value"));
    } else {
      ++metas;
      EXPECT_EQ(e.at("name").string, "thread_name");
      ASSERT_TRUE(e.at("args").has("name"));
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(counters, 1u);
  EXPECT_EQ(metas, 1u);

  // Timestamps are normalized to the earliest event and converted to
  // microseconds: the run span began at 1000 ns -> ts 0.0, dur 1.5 us.
  for (const JsonValue& e : events.array) {
    if (e.at("ph").string == "X" && e.at("name").string == "run") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 0.0);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 1.5);
    }
  }
}

TEST(TraceExport, JsonEscapesThreadNames) {
  set_thread_name("weird \"name\"\\with\nescapes");
  TraceSession session;
  emit_span("c", "n", 0, 1);
  session.stop();
  std::ostringstream os;
  write_chrome_json(os, session.capture());
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  set_thread_name("trace-test-main");  // restore for later tests
}

TEST(TraceExport, SummarizerBusyTimeEqualsSumOfSpanDurations) {
  TraceSession session;
  emit_span("w", "a", 0, 10);
  emit_span("w", "b", 20, 35);
  emit_span("w", "c", 40, 41);
  emit_counter("w", "ignored", 7);  // counters contribute no busy time
  session.stop();
  const Capture cap = session.capture();
  const Summary s = summarize(cap);

  // Acceptance identity: per-worker busy time == the sum of that
  // worker's span durations in the same capture.
  std::map<std::uint32_t, std::uint64_t> manual;
  for (const Event& e : cap.events) {
    if (e.kind == EventKind::kSpan && std::string(e.name) != "sleep") {
      manual[e.tid] += e.end_ns - e.begin_ns;
    }
  }
  for (const WorkerSummary& w : s.workers) {
    const auto it = manual.find(w.tid);
    const std::uint64_t expect = it == manual.end() ? 0 : it->second;
    EXPECT_EQ(w.busy_ns, expect) << "tid " << w.tid;
  }
  EXPECT_EQ(s.events, cap.events.size());
  EXPECT_EQ(s.wall_ns, 41u);  // max end - min begin over spans

  const Table t = summary_table(s);
  EXPECT_GT(t.rows(), 4u);
}

TEST(TraceExport, SleepSpansExcludedFromBusyAndCriticalPath) {
  TraceSession session;
  emit_span("sched", "run", 0, 10);
  emit_span("sched", "sleep", 10, 1000);
  session.stop();
  const Summary s = summarize(session.capture());
  std::uint64_t busy = 0, sleep = 0;
  for (const WorkerSummary& w : s.workers) {
    busy += w.busy_ns;
    sleep += w.sleep_ns;
  }
  EXPECT_EQ(busy, 10u);
  EXPECT_EQ(sleep, 990u);
  EXPECT_EQ(s.critical_path_ns, 10u);
}

TEST(TraceExport, CriticalPathChainsTimeOrderedSpans) {
  TraceSession session;
  // A [0,10) and C [5,8) overlap (no chain); B [10,25) follows A.
  // Longest chain: A -> B = 25.
  emit_span("t", "A", 0, 10);
  emit_span("t", "B", 10, 25);
  emit_span("t", "C", 5, 8);
  session.stop();
  const Summary s = summarize(session.capture());
  EXPECT_EQ(s.critical_path_ns, 25u);
}

TEST(TraceExport, CriticalPathPicksBestPredecessorNotLatest) {
  TraceSession session;
  // Two candidate predecessors for C[25,40]: A (long, ends 20) and B
  // (short, ends 25).  B overlaps A, so B cannot chain off it.  The
  // latest finisher is B, but the best chain is A(20) -> C(15) = 35,
  // not B(10) -> C(15) = 25 — the DP must track the max-finished
  // predecessor, not the last-finished one.
  emit_span("t", "A", 0, 20);
  emit_span("t", "B", 15, 25);
  emit_span("t", "C", 25, 40);
  session.stop();
  const Summary s = summarize(session.capture());
  EXPECT_EQ(s.critical_path_ns, 35u);
}

TEST(TraceConcurrent, ParallelWritersAccountForEveryEvent) {
  // The TSan target: many threads writing their own rings while the
  // session is live.  After they join, retained + dropped must equal
  // the total written — nothing lost, nothing double-counted.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;  // well past the ring size
  TraceSession session(/*events_per_thread=*/1024);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name("writer-" + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span s("load", "w", static_cast<std::uint64_t>(t), i);
      }
    });
  }
  for (auto& t : threads) t.join();
  session.stop();
  const Capture cap = session.capture();

  std::uint64_t from_writers = 0;
  std::uint64_t writer_dropped = 0;
  for (const CapturedThread& t : cap.threads) {
    if (t.name.rfind("writer-", 0) == 0) {
      from_writers += t.events;
      writer_dropped += t.dropped;
    }
  }
  EXPECT_EQ(from_writers + writer_dropped, kThreads * kPerThread);
  EXPECT_EQ(from_writers, kThreads * 1024u);  // each ring exactly full
}

TEST(TraceSched, SchedulerEmitsRunStealAndSleepSpans) {
  TraceSession session;
  std::uint64_t steal_count_delta = 0;
  {
    sched::Scheduler pool(4);
    const std::uint64_t steals_before = pool.steal_count();
    // Force a steal deterministically (even on a one-core host where
    // preemption alone may never let a thief win): f busy-waits until g
    // has run, and g can only run via a thief — the owner is stuck
    // inside f, so the pushed child is reachable only from the top of
    // the deque.
    pool.run([&] {
      std::atomic<bool> g_ran{false};
      sched::Scheduler::fork2(
          [&] {
            while (!g_ran.load(std::memory_order_acquire)) {
              std::this_thread::yield();
            }
          },
          [&] { g_ran.store(true, std::memory_order_release); });
      // Then a small fork tree for volume (run/steal spans, either mix).
      std::atomic<int> ran{0};
      std::function<void(int, int)> spawn = [&](int lo, int hi) {
        if (hi - lo == 1) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          ran.fetch_add(1);
          return;
        }
        const int mid = lo + (hi - lo) / 2;
        sched::Scheduler::fork2([&] { spawn(lo, mid); },
                                [&] { spawn(mid, hi); });
      };
      spawn(0, 64);
      ASSERT_EQ(ran.load(), 64);
    });
    steal_count_delta = pool.steal_count() - steals_before;
    // ~Scheduler joins the workers: every traced thread quiesces here.
  }
  session.stop();
  const Capture cap = session.capture();

  const auto steals = spans_named(cap, "sched", "steal");
  EXPECT_GT(steals.size(), 0u);
  // No ring wrapped (64 tasks <<< default capacity), so the capture
  // holds every steal span and the summarizer's count must match the
  // scheduler's own counter.
  ASSERT_EQ(cap.dropped, 0u);
  EXPECT_EQ(steals.size(), steal_count_delta);
  const Summary s = summarize(cap);
  std::uint64_t summary_steals = 0;
  for (const WorkerSummary& w : s.workers) summary_steals += w.steals;
  EXPECT_EQ(summary_steals, steal_count_delta);
  // Worker threads introduced themselves.
  std::set<std::string> names;
  for (const CapturedThread& t : cap.threads) names.insert(t.name);
  EXPECT_TRUE(names.count("sched-w1") == 1) << "missing worker thread name";
}

TEST(TraceFm, GrainSpansCoverTheEnumeratedSlotRange) {
  algos::SwScores scores;
  const fm::FunctionSpec spec = algos::editdist_spec(8, 8, scores);
  const fm::MachineConfig cfg = fm::make_machine(8, 1);
  fm::Mapping proto;
  for (fm::TensorId in : spec.input_tensors()) {
    proto.set_input(in,
                    fm::InputHome::distributed(
                        fm::block_distribution(spec.domain(in),
                                               cfg.geom).place));
  }

  TraceSession session;
  fm::SearchResult res;
  {
    sched::Scheduler pool(4);
    fm::SearchOptions opts;
    opts.scheduler = &pool;
    res = fm::search_affine(spec, cfg, proto, opts);
  }
  session.stop();
  const Capture cap = session.capture();
  ASSERT_TRUE(res.exhausted);
  ASSERT_EQ(cap.dropped, 0u);

  // One span per grain, annotated [lo, hi): the union of grain ranges
  // is exactly the enumerated slot count, and every lane id is sane.
  const auto grains = spans_named(cap, "fm", "grain");
  ASSERT_GT(grains.size(), 0u);
  std::uint64_t covered = 0;
  for (const Event& g : grains) {
    EXPECT_LT(g.arg0, g.arg1) << "grain with empty slot range";
    EXPECT_LT(g.id, 4u) << "lane id out of range";
    covered += g.arg1 - g.arg0;
  }
  EXPECT_EQ(covered, res.enumerated);
  // The whole search is wrapped in its own span.
  EXPECT_EQ(spans_named(cap, "fm", "search_affine").size(), 1u);
}

TEST(TraceServe, RequestLifecycleSpansAreStitchedByRequestId) {
  TraceSession session;
  {
    serve::ServiceConfig cfg;
    cfg.num_workers = 2;
    serve::Service svc(cfg);

    algos::SwScores scores;
    serve::Request req;
    req.kind = serve::RequestKind::kCostEval;
    req.spec = std::make_shared<const fm::FunctionSpec>(
        algos::editdist_spec(8, 8, scores));
    req.machine = fm::make_machine(8, 1);
    req.inputs = {serve::InputPlacement::at({0, 0}),
                  serve::InputPlacement::at({0, 0})};
    req.map = fm::AffineMap{.ti = 1, .tj = 1, .tk = 0, .t0 = 0,
                            .xi = 1, .xj = 0, .xk = 0, .x0 = 0,
                            .yi = 0, .yj = 0, .yk = 0, .y0 = 0,
                            .cols = 8, .rows = 1};
    const serve::Response r1 = svc.call(req);
    ASSERT_TRUE(r1.ok());
    EXPECT_FALSE(r1.cache_hit);
    // While the session is live, the metrics snapshot reports the
    // trace's drop counter.
    const serve::MetricsSnapshot snap = svc.metrics();
    EXPECT_EQ(snap.trace_dropped, dropped_total());
    // Second call: cache fast path -> admit span flagged as a hit.
    const serve::Response r2 = svc.call(req);
    EXPECT_TRUE(r2.cache_hit);
    // ~Service joins dispatcher + workers before capture.
  }
  session.stop();
  const Capture cap = session.capture();
  ASSERT_EQ(cap.dropped, 0u);

  // The miss request's lifecycle, stitched by one request id: admit,
  // queue_wait, cache_probe, cost_eval (the oracle span), reply.
  const auto oracle = spans_named(cap, "serve", "cost_eval");
  ASSERT_EQ(oracle.size(), 1u);
  const std::uint64_t rid = oracle[0].id;
  EXPECT_NE(rid, 0u);
  for (const char* name : {"admit", "queue_wait", "cache_probe", "reply"}) {
    const auto matches = spans_named(cap, "serve", name);
    const bool stitched =
        std::any_of(matches.begin(), matches.end(),
                    [rid](const Event& e) { return e.id == rid; });
    EXPECT_TRUE(stitched) << "no '" << name << "' span with rid " << rid;
  }
  // The queue-wait interval nests inside admit-to-reply.
  const auto waits = spans_named(cap, "serve", "queue_wait");
  for (const Event& w : waits) {
    if (w.id == rid) {
      EXPECT_LE(w.begin_ns, w.end_ns);
    }
  }
  // The cached call produced an admit span with the hit flag and a
  // different request id.
  const auto admits = spans_named(cap, "serve", "admit");
  const bool saw_hit =
      std::any_of(admits.begin(), admits.end(), [rid](const Event& e) {
        return e.id != rid && e.arg0 == 1;
      });
  EXPECT_TRUE(saw_hit) << "cache-hit admit span missing";
  // Exactly one batch span carried the work (one miss -> one batch).
  EXPECT_GE(spans_named(cap, "serve", "batch").size(), 1u);
}

}  // namespace
}  // namespace harmony::trace
