// Tests for the work-span analyzer and its greedy-schedule simulator,
// including the Brent-bound property audit (paper §2).
#include <gtest/gtest.h>

#include <cmath>

#include "algos/scan.hpp"
#include "algos/sort.hpp"
#include "sched/parallel_ops.hpp"
#include "sched/workspan.hpp"

namespace harmony::sched {
namespace {

TEST(WorkSpan, SequentialWorkAccumulates) {
  WorkSpanCtx ctx;
  ctx.work(3);
  ctx.work(4);
  EXPECT_DOUBLE_EQ(ctx.total_work(), 7.0);
  EXPECT_DOUBLE_EQ(ctx.span(), 7.0);  // one strand
  EXPECT_EQ(ctx.leaf_count(), 1u);    // merged into one leaf
}

TEST(WorkSpan, Fork2TakesMaxForSpan) {
  WorkSpanCtx ctx;
  ctx.fork2([&] { ctx.work(10); }, [&] { ctx.work(4); });
  EXPECT_DOUBLE_EQ(ctx.total_work(), 14.0);
  EXPECT_DOUBLE_EQ(ctx.span(), 10.0);
  EXPECT_EQ(ctx.fork_count(), 1u);
  EXPECT_DOUBLE_EQ(ctx.parallelism(), 1.4);
}

TEST(WorkSpan, NestedForksCompose) {
  WorkSpanCtx ctx;
  ctx.work(1);
  ctx.fork2(
      [&] {
        ctx.fork2([&] { ctx.work(5); }, [&] { ctx.work(6); });
      },
      [&] { ctx.work(3); });
  ctx.work(2);
  EXPECT_DOUBLE_EQ(ctx.total_work(), 17.0);
  EXPECT_DOUBLE_EQ(ctx.span(), 1.0 + 6.0 + 2.0);
}

TEST(WorkSpan, ForkCostChargedOnBothAxes) {
  WorkSpanCtx::Options opts;
  opts.fork_cost = 2.0;
  WorkSpanCtx ctx(opts);
  ctx.fork2([&] { ctx.work(4); }, [&] { ctx.work(4); });
  EXPECT_DOUBLE_EQ(ctx.total_work(), 10.0);  // 8 + fork
  EXPECT_DOUBLE_EQ(ctx.span(), 6.0);         // fork + max(4,4)
}

TEST(WorkSpan, GreedyOneProcessorEqualsWork) {
  WorkSpanCtx ctx;
  ctx.fork2([&] { ctx.work(7); }, [&] { ctx.work(5); });
  EXPECT_DOUBLE_EQ(ctx.greedy_time(1), 12.0);
}

TEST(WorkSpan, GreedyInfiniteProcessorsEqualsSpan) {
  WorkSpanCtx ctx;
  ctx.work(1);
  ctx.fork2([&] { ctx.work(10); },
            [&] {
              ctx.fork2([&] { ctx.work(3); }, [&] { ctx.work(4); });
            });
  EXPECT_DOUBLE_EQ(ctx.greedy_time(64), ctx.span());
}

TEST(WorkSpan, GreedyTwoProcessorsPerfectSplit) {
  WorkSpanCtx ctx;
  ctx.fork2([&] { ctx.work(8); }, [&] { ctx.work(8); });
  EXPECT_DOUBLE_EQ(ctx.greedy_time(2), 8.0);
}

// Brent's bound audited over a sweep of algorithms and processor counts.
class BrentBound : public ::testing::TestWithParam<std::tuple<int, unsigned>> {
};

TEST_P(BrentBound, ScanRespectsBothSides) {
  const auto [size_log2, p] = GetParam();
  const std::size_t n = std::size_t{1} << size_log2;
  WorkSpanCtx ctx;
  std::vector<double> data(n, 1.0);
  algos::exclusive_scan(ctx, data, /*grain=*/16);
  const double w = ctx.total_work();
  const double d = ctx.span();
  const double tp = ctx.greedy_time(p);
  EXPECT_GE(tp + 1e-9, w / p);
  EXPECT_GE(tp + 1e-9, d);
  EXPECT_LE(tp, w / p + d + 1e-9);
}

TEST_P(BrentBound, MergeSortRespectsBothSides) {
  const auto [size_log2, p] = GetParam();
  const std::size_t n = std::size_t{1} << size_log2;
  WorkSpanCtx ctx;
  auto keys = algos::random_keys(n, /*seed=*/99);
  algos::merge_sort_par(ctx, keys, /*grain=*/32);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const double w = ctx.total_work();
  const double d = ctx.span();
  const double tp = ctx.greedy_time(p);
  EXPECT_GE(tp + 1e-9, w / p);
  EXPECT_GE(tp + 1e-9, d);
  EXPECT_LE(tp, w / p + d + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BrentBound,
    ::testing::Combine(::testing::Values(8, 10, 12),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

TEST(WorkSpan, ScanIsWorkEfficient) {
  // Parallel scan work must be within a small constant of serial (n).
  const std::size_t n = 1 << 14;
  WorkSpanCtx ctx;
  std::vector<double> data(n, 1.0);
  algos::exclusive_scan(ctx, data, 16);
  EXPECT_LT(ctx.total_work(), 4.0 * static_cast<double>(n));
  // Span must be polylogarithmic: generous bound c * log^2 n.
  const double lg = std::log2(static_cast<double>(n));
  EXPECT_LT(ctx.span(), 40.0 * lg * lg);
}

TEST(WorkSpan, GreedySpeedupScalesForScan) {
  const std::size_t n = 1 << 14;
  WorkSpanCtx ctx;
  std::vector<double> data(n, 1.0);
  algos::exclusive_scan(ctx, data, 16);
  const double t1 = ctx.greedy_time(1);
  const double t16 = ctx.greedy_time(16);
  EXPECT_GT(t1 / t16, 8.0);  // at least half of ideal 16x
}

TEST(WorkSpan, ParallelForSpanLogarithmic) {
  WorkSpanCtx ctx;
  const std::size_t n = 1 << 12;
  parallel_for(ctx, std::size_t{0}, n, 1, [&](std::size_t) { ctx.work(1); });
  EXPECT_DOUBLE_EQ(ctx.total_work(), static_cast<double>(n));
  EXPECT_LE(ctx.span(), std::log2(static_cast<double>(n)) + 2.0);
}

}  // namespace
}  // namespace harmony::sched
